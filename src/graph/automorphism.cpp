#include "graph/automorphism.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

namespace kgdp::graph {

namespace {

// 1-WL colour refinement to a stable partition. Classes only ever split,
// so the loop terminates when the class count stops growing; the final
// colours are invariant under every colour-preserving automorphism.
std::vector<int> stable_refinement(const Graph& g,
                                   const std::vector<int>* colors) {
  const int n = g.num_nodes();
  std::vector<int> cur(n, 0);
  // Fold the external colouring and the degree into the initial classes.
  {
    std::map<std::pair<int, int>, int> ids;
    for (int u = 0; u < n; ++u) {
      ids.emplace(std::pair{colors ? (*colors)[u] : 0, g.degree(u)}, 0);
    }
    int next = 0;
    for (auto& [key, id] : ids) id = next++;
    for (int u = 0; u < n; ++u) {
      cur[u] = ids.at({colors ? (*colors)[u] : 0, g.degree(u)});
    }
  }
  int classes = 0;
  for (int c : cur) classes = std::max(classes, c + 1);

  while (true) {
    // Signature: own class followed by the sorted multiset of neighbour
    // classes. New ids are assigned in signature order: deterministic.
    std::vector<std::vector<int>> sig(n);
    for (int u = 0; u < n; ++u) {
      sig[u].push_back(cur[u]);
      for (Node w : g.neighbors(u)) sig[u].push_back(cur[w]);
      std::sort(sig[u].begin() + 1, sig[u].end());
    }
    std::map<std::vector<int>, int> ids;
    for (int u = 0; u < n; ++u) ids.emplace(sig[u], 0);
    if (static_cast<int>(ids.size()) == classes) break;  // stable
    int next = 0;
    for (auto& [key, id] : ids) id = next++;
    for (int u = 0; u < n; ++u) cur[u] = ids.at(sig[u]);
    classes = static_cast<int>(ids.size());
  }
  return cur;
}

// Backtracking enumeration of every refinement-respecting bijection that
// preserves adjacency (and hence non-adjacency, via the reverse check).
class AutomorphismSearch {
 public:
  AutomorphismSearch(const Graph& g, std::vector<int> refined,
                     std::uint64_t cap)
      : g_(g), colors_(std::move(refined)), cap_(cap),
        map_(g.num_nodes(), -1), inv_(g.num_nodes(), -1) {
    const int n = g_.num_nodes();
    std::vector<int> class_size(n == 0 ? 1 : n, 0);
    for (int c : colors_) ++class_size[c];
    // Greedy connected order: always extend with the node seeing the most
    // already-ordered neighbours (ties: smaller colour class, lower id).
    // Degree-1 terminals then become forced the moment their processor is
    // mapped instead of branching over their whole class up front.
    order_.reserve(n);
    std::vector<int> placed_neighbors(n, 0);
    std::vector<bool> chosen(n, false);
    for (int step = 0; step < n; ++step) {
      Node best = -1;
      for (Node u = 0; u < n; ++u) {
        if (chosen[u]) continue;
        if (best < 0) {
          best = u;
          continue;
        }
        if (placed_neighbors[u] != placed_neighbors[best]) {
          if (placed_neighbors[u] > placed_neighbors[best]) best = u;
          continue;
        }
        if (class_size[colors_[u]] != class_size[colors_[best]]) {
          if (class_size[colors_[u]] < class_size[colors_[best]]) best = u;
          continue;
        }
        // remaining tie: keep the lower id (u > best here)
      }
      chosen[best] = true;
      order_.push_back(best);
      for (Node w : g_.neighbors(best)) ++placed_neighbors[w];
    }
  }

  // Enumerates into `elements` (identity included). Returns false iff the
  // cap was hit.
  bool run(std::vector<Permutation>& elements) {
    elements_ = &elements;
    return extend(0);
  }

  const std::vector<Node>& search_order() const { return order_; }

 private:
  bool feasible(Node u, Node v) const {
    if (colors_[u] != colors_[v]) return false;
    for (Node w : g_.neighbors(u)) {
      if (map_[w] >= 0 && !g_.has_edge(v, map_[w])) return false;
    }
    for (Node x : g_.neighbors(v)) {
      if (inv_[x] >= 0 && !g_.has_edge(u, inv_[x])) return false;
    }
    return true;
  }

  bool extend(std::size_t depth) {
    if (depth == order_.size()) {
      elements_->push_back(map_);
      return elements_->size() < cap_;
    }
    const Node u = order_[depth];
    for (Node v = 0; v < g_.num_nodes(); ++v) {
      if (inv_[v] >= 0 || !feasible(u, v)) continue;
      map_[u] = v;
      inv_[v] = u;
      const bool keep_going = extend(depth + 1);
      map_[u] = -1;
      inv_[v] = -1;
      if (!keep_going) return false;
    }
    return true;
  }

  const Graph& g_;
  std::vector<int> colors_;
  std::uint64_t cap_;
  std::vector<Node> map_;
  std::vector<Node> inv_;
  std::vector<Node> order_;
  std::vector<Permutation>* elements_ = nullptr;
};

// Transversals of the stabilizer chain along `base` generate the group:
// keep, per (level, image of base[level]), the first element whose
// earliest moved base point is that level. Strips every element down to
// the identity by induction, so the kept set is a strong generating set.
std::vector<Permutation> strong_generating_set(
    const std::vector<Permutation>& elements, const std::vector<Node>& base) {
  std::vector<Permutation> gens;
  std::unordered_map<std::uint64_t, bool> seen;
  const std::uint64_t n = base.size();
  for (const Permutation& e : elements) {
    for (std::uint64_t level = 0; level < n; ++level) {
      const Node b = base[level];
      if (e[b] == b) continue;
      const std::uint64_t key = level * n + static_cast<std::uint64_t>(e[b]);
      if (!seen.emplace(key, true).second) break;
      gens.push_back(e);
      break;
    }
  }
  return gens;
}

}  // namespace

AutomorphismList find_automorphisms(const Graph& g,
                                    const std::vector<int>* colors,
                                    const AutomorphismOptions& opts) {
  assert(!colors || static_cast<int>(colors->size()) == g.num_nodes());
  AutomorphismList out;
  if (g.num_nodes() == 0) return out;

  AutomorphismSearch search(g, stable_refinement(g, colors),
                            std::max<std::uint64_t>(1, opts.max_elements));
  std::vector<Permutation> elements;
  out.complete = search.run(elements);
  out.order = elements.size();
  if (out.complete) {
    out.generators = strong_generating_set(elements, search.search_order());
  }
  return out;
}

AutomorphismList solution_automorphisms(const kgd::SolutionGraph& sg,
                                        const AutomorphismOptions& opts) {
  std::vector<int> colors(sg.num_nodes());
  for (int v = 0; v < sg.num_nodes(); ++v) {
    colors[v] = static_cast<int>(sg.role(v));
  }
  return find_automorphisms(sg.graph(), &colors, opts);
}

bool is_automorphism(const Graph& g, const Permutation& perm,
                     const std::vector<int>* colors) {
  const int n = g.num_nodes();
  if (static_cast<int>(perm.size()) != n) return false;
  std::vector<bool> hit(n, false);
  for (Node u = 0; u < n; ++u) {
    if (perm[u] < 0 || perm[u] >= n || hit[perm[u]]) return false;
    hit[perm[u]] = true;
    if (colors && (*colors)[u] != (*colors)[perm[u]]) return false;
  }
  for (Node u = 0; u < n; ++u) {
    for (Node w : g.neighbors(u)) {
      if (!g.has_edge(perm[u], perm[w])) return false;
    }
  }
  return true;
}

}  // namespace kgdp::graph
