// Graphviz DOT export for plain and role-coloured graphs so each paper
// figure can be regenerated visually (`dot -Tpng`).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace kgdp::graph {

// Plain export; node names default to ids, or supply `names`.
std::string to_dot(const Graph& g, const std::string& graph_name = "G",
                   const std::vector<std::string>* names = nullptr,
                   const std::vector<std::string>* colors = nullptr);

}  // namespace kgdp::graph
