#include "graph/properties.hpp"

#include <algorithm>
#include <functional>

#include "util/bitset.hpp"

namespace kgdp::graph {

bool is_connected(const Graph& g) {
  return g.num_nodes() <= 1 || connected_components(g) == 1;
}

int connected_components(const Graph& g, std::vector<int>* comp_out) {
  const int n = g.num_nodes();
  std::vector<int> comp(n, -1);
  int count = 0;
  std::vector<Node> stack;
  for (Node s = 0; s < n; ++s) {
    if (comp[s] >= 0) continue;
    comp[s] = count;
    stack.push_back(s);
    while (!stack.empty()) {
      const Node v = stack.back();
      stack.pop_back();
      for (Node w : g.neighbors(v)) {
        if (comp[w] < 0) {
          comp[w] = count;
          stack.push_back(w);
        }
      }
    }
    ++count;
  }
  if (comp_out) *comp_out = std::move(comp);
  return count;
}

std::vector<Node> articulation_points(const Graph& g) {
  const int n = g.num_nodes();
  std::vector<int> disc(n, -1), low(n, 0);
  std::vector<bool> is_cut(n, false);
  int timer = 0;

  // Iterative Tarjan to avoid deep recursion on long paths.
  struct Frame {
    Node v;
    Node parent;
    std::size_t next_idx;
    int children;
  };
  std::vector<Frame> stack;
  for (Node root = 0; root < n; ++root) {
    if (disc[root] >= 0) continue;
    disc[root] = low[root] = timer++;
    stack.push_back({root, -1, 0, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto nb = g.neighbors(f.v);
      if (f.next_idx < nb.size()) {
        const Node w = nb[f.next_idx++];
        if (w == f.parent) continue;
        if (disc[w] >= 0) {
          low[f.v] = std::min(low[f.v], disc[w]);
        } else {
          disc[w] = low[w] = timer++;
          ++f.children;
          stack.push_back({w, f.v, 0, 0});
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& p = stack.back();
          low[p.v] = std::min(low[p.v], low[done.v]);
          if (p.parent != -1 && low[done.v] >= disc[p.v]) is_cut[p.v] = true;
        }
        if (done.parent == -1 && done.children >= 2) is_cut[done.v] = true;
      }
    }
  }

  std::vector<Node> cuts;
  for (Node v = 0; v < n; ++v) {
    if (is_cut[v]) cuts.push_back(v);
  }
  return cuts;
}

bool is_simple_path(const Graph& g, const std::vector<Node>& path) {
  if (path.empty()) return false;
  util::DynamicBitset seen(g.num_nodes());
  for (std::size_t i = 0; i < path.size(); ++i) {
    const Node v = path[i];
    if (v < 0 || v >= g.num_nodes() || seen.test(v)) return false;
    seen.set(v);
    if (i > 0 && !g.has_edge(path[i - 1], v)) return false;
  }
  return true;
}

bool is_hamiltonian_path(const Graph& g, const std::vector<Node>& path) {
  return static_cast<int>(path.size()) == g.num_nodes() &&
         is_simple_path(g, path);
}

bool is_simple(const Graph& g) {
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const auto nb = g.neighbors(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (nb[i] == u) return false;
      if (i > 0 && nb[i] == nb[i - 1]) return false;
    }
  }
  return true;
}

}  // namespace kgdp::graph
