#include "reconfig/route.hpp"

#include <algorithm>
#include <cassert>

#include "verify/pipeline_solver.hpp"

namespace kgdp::reconfig {

using graph::Node;
using kgd::Role;

namespace {

// Certify-or-reject wrapper shared by all routers.
std::optional<Pipeline> certified(const SolutionGraph& sg,
                                  const FaultSet& faults,
                                  std::vector<Node> path) {
  const kgd::PipelineCheck chk = kgd::check_pipeline(sg, faults, path);
  if (!chk.ok) return std::nullopt;
  return kgd::normalize_pipeline(sg, std::move(path));
}

// The unique terminal of `kind` adjacent to processor v, healthy only;
// -1 if none.
Node healthy_terminal(const SolutionGraph& sg, const FaultSet& faults,
                      Node v, Role kind) {
  for (Node w : sg.graph().neighbors(v)) {
    if (sg.role(w) == kind && !faults.contains(w)) return w;
  }
  return -1;
}

}  // namespace

std::optional<Pipeline> route_g1k(const SolutionGraph& sg,
                                  const FaultSet& faults) {
  const int k = sg.k();
  if (faults.size() > k) return std::nullopt;

  // The k+1 parts {p_j, i_j, o_j}; at least one is fully healthy.
  Node a = -1;
  for (Node p : sg.processors()) {
    if (faults.contains(p)) continue;
    if (healthy_terminal(sg, faults, p, Role::kInput) >= 0 &&
        healthy_terminal(sg, faults, p, Role::kOutput) >= 0) {
      a = p;
      break;
    }
  }
  if (a < 0) return std::nullopt;

  // Case 1: another healthy processor b with a healthy terminal c.
  for (Node b : sg.processors()) {
    if (b == a || faults.contains(b)) continue;
    const Node cin = healthy_terminal(sg, faults, b, Role::kInput);
    const Node cout = healthy_terminal(sg, faults, b, Role::kOutput);
    if (cin < 0 && cout < 0) continue;

    // Path: c, b, all remaining healthy processors (clique: any order)
    // ending at a, then a's terminal of the other kind.
    std::vector<Node> middle;
    for (Node p : sg.processors()) {
      if (p != a && p != b && !faults.contains(p)) middle.push_back(p);
    }
    std::vector<Node> path;
    if (cin >= 0) {
      path.push_back(cin);
      path.push_back(b);
      path.insert(path.end(), middle.begin(), middle.end());
      path.push_back(a);
      path.push_back(healthy_terminal(sg, faults, a, Role::kOutput));
    } else {
      path.push_back(healthy_terminal(sg, faults, a, Role::kInput));
      path.push_back(a);
      path.insert(path.end(), middle.begin(), middle.end());
      path.push_back(b);
      path.push_back(cout);
    }
    return certified(sg, faults, std::move(path));
  }

  // Case 2: every other processor is dead (or terminal-less); the
  // healthy part alone is the pipeline. This is only valid if a truly is
  // the sole healthy processor — certification rejects otherwise.
  return certified(sg, faults,
                   {healthy_terminal(sg, faults, a, Role::kInput), a,
                    healthy_terminal(sg, faults, a, Role::kOutput)});
}

std::optional<Pipeline> route_g2k(const SolutionGraph& sg,
                                  const FaultSet& faults) {
  const int k = sg.k();
  if (faults.size() > k) return std::nullopt;

  // Healthy parts: processor healthy and every attached terminal healthy.
  // Pick c with a healthy input terminal and d != c with a healthy output
  // terminal (the proof guarantees two fully-healthy parts exist, and the
  // only single-kind parts are a's and b's, which carry opposite kinds).
  Node c = -1, d = -1;
  auto part_healthy = [&](Node p) {
    if (faults.contains(p)) return false;
    for (Node w : sg.graph().neighbors(p)) {
      if (sg.role(w) != Role::kProcessor && faults.contains(w)) return false;
    }
    return true;
  };
  std::vector<Node> healthy_parts;
  for (Node p : sg.processors()) {
    if (part_healthy(p)) healthy_parts.push_back(p);
  }
  for (Node p : healthy_parts) {
    if (c < 0 && healthy_terminal(sg, faults, p, Role::kInput) >= 0) {
      c = p;
      continue;
    }
    if (d < 0 && healthy_terminal(sg, faults, p, Role::kOutput) >= 0) {
      d = p;
    }
  }
  // The greedy above can mis-assign when c grabbed the only part with an
  // output; retry with roles swapped.
  if (d < 0) {
    c = d = -1;
    for (Node p : healthy_parts) {
      if (d < 0 && healthy_terminal(sg, faults, p, Role::kOutput) >= 0) {
        d = p;
        continue;
      }
      if (c < 0 && healthy_terminal(sg, faults, p, Role::kInput) >= 0) {
        c = p;
      }
    }
  }
  if (c < 0 || d < 0) return std::nullopt;

  // Spanning path of ALL healthy processors (clique): c, middle, d.
  std::vector<Node> path;
  path.push_back(healthy_terminal(sg, faults, c, Role::kInput));
  path.push_back(c);
  for (Node p : sg.processors()) {
    if (p != c && p != d && !faults.contains(p)) path.push_back(p);
  }
  path.push_back(d);
  path.push_back(healthy_terminal(sg, faults, d, Role::kOutput));
  return certified(sg, faults, std::move(path));
}

namespace {

// One peeled extension layer: the layer's input terminals T (the last
// k+1 node ids) and the relabeled clique I (their processor neighbors).
struct Layer {
  std::vector<Node> terminals;        // T, |T| = k+1
  std::vector<Node> attach;           // I, attach[j] adjacent to terminals[j]
};

// Detects whether `sg` has a peelable Lemma 3.6 layer.
std::optional<Layer> peel_layer(const SolutionGraph& sg) {
  const int k = sg.k();
  const int n_nodes = sg.num_nodes();
  if (sg.n() <= k + 1) return std::nullopt;  // nothing left to peel
  Layer layer;
  for (Node t = n_nodes - (k + 1); t < n_nodes; ++t) {
    if (sg.role(t) != Role::kInput || sg.graph().degree(t) != 1) {
      return std::nullopt;
    }
    layer.terminals.push_back(t);
    layer.attach.push_back(sg.graph().neighbors(t)[0]);
  }
  // I must be k+1 distinct processors forming a clique.
  std::vector<Node> sorted = layer.attach;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < layer.attach.size(); ++i) {
    if (sg.role(layer.attach[i]) != Role::kProcessor) return std::nullopt;
    for (std::size_t j = i + 1; j < layer.attach.size(); ++j) {
      if (!sg.graph().has_edge(layer.attach[i], layer.attach[j])) {
        return std::nullopt;
      }
    }
  }
  return layer;
}

// Builds the base-graph view: drop T, relabel I as input terminals, and
// remove the I-clique edges the extension added. Node ids 0..N-k-2 are
// preserved, so base paths lift to the full graph unchanged.
SolutionGraph base_view(const SolutionGraph& sg, const Layer& layer) {
  const int k = sg.k();
  const int base_nodes = sg.num_nodes() - (k + 1);
  graph::Graph g(base_nodes);
  util::DynamicBitset is_attach(sg.num_nodes());
  for (Node v : layer.attach) is_attach.set(v);
  for (auto [u, v] : sg.graph().edges()) {
    if (u >= base_nodes || v >= base_nodes) continue;
    if (is_attach.test(u) && is_attach.test(v)) continue;  // clique edge
    g.add_edge(u, v);
  }
  std::vector<Role> roles(sg.roles().begin(),
                          sg.roles().begin() + base_nodes);
  for (Node v : layer.attach) roles[v] = Role::kInput;
  return SolutionGraph(std::move(g), std::move(roles), sg.n() - (k + 1), k,
                       "peeled(" + sg.name() + ")");
}

std::optional<std::vector<Node>> route_family_rec(const SolutionGraph& sg,
                                                  const FaultSet& faults) {
  const auto layer = peel_layer(sg);
  if (!layer) {
    // Base case: constant-size graph, exact solver.
    const auto out = verify::find_pipeline(sg, faults);
    if (out.status != verify::SolveStatus::kFound) return std::nullopt;
    return out.pipeline->path;
  }

  const SolutionGraph base = base_view(sg, *layer);
  const int base_nodes = base.num_nodes();

  // Split faults: inside the base view vs. on this layer's terminals.
  std::vector<Node> base_faults;
  std::vector<Node> faulty_terminals;
  for (Node v : faults.nodes()) {
    if (v < base_nodes) {
      base_faults.push_back(v);
    } else {
      faulty_terminals.push_back(v);
    }
  }

  // Case 2 of the Lemma 3.6 proof: some terminal of this layer is
  // faulty. Swap one faulty terminal j3 for a healthy attach node i4
  // whose own terminal j4 is healthy, and recurse with i4 marked faulty.
  Node i4 = -1, j4 = -1;
  if (!faulty_terminals.empty()) {
    for (std::size_t j = 0; j < layer->terminals.size(); ++j) {
      const Node t = layer->terminals[j];
      const Node p = layer->attach[j];
      if (!faults.contains(t) && !faults.contains(p)) {
        i4 = p;
        j4 = t;
        break;
      }
    }
    if (i4 < 0) return std::nullopt;  // > k faults on this layer
    base_faults.push_back(i4);
  }

  const FaultSet base_fs(base_nodes, base_faults);
  auto base_path = route_family_rec(base, base_fs);
  if (!base_path) return std::nullopt;

  // The base pipeline's input-terminal endpoint is an I node; make it the
  // front.
  if (base.role(base_path->front()) != Role::kInput) {
    std::reverse(base_path->begin(), base_path->end());
  }
  const Node i1 = base_path->front();

  // Healthy I nodes that are not on the base pipeline (only i1 is).
  std::vector<Node> loose;
  for (Node p : layer->attach) {
    if (p != i1 && p != i4 && !faults.contains(p)) loose.push_back(p);
  }

  std::vector<Node> path;
  if (i4 >= 0) {
    // Case 2: j4, i4, loose..., i1, rest of base pipeline.
    path.push_back(j4);
    path.push_back(i4);
    path.insert(path.end(), loose.begin(), loose.end());
    path.insert(path.end(), base_path->begin(), base_path->end());
  } else {
    // Case 1: pick the terminal of the last loose node (or of i1).
    const Node i2 = loose.empty() ? i1 : loose.back();
    Node j2 = -1;
    for (std::size_t j = 0; j < layer->attach.size(); ++j) {
      if (layer->attach[j] == i2) j2 = layer->terminals[j];
    }
    if (j2 < 0 || std::find(faulty_terminals.begin(),
                            faulty_terminals.end(),
                            j2) != faulty_terminals.end()) {
      return std::nullopt;
    }
    path.push_back(j2);
    for (auto it = loose.rbegin(); it != loose.rend(); ++it) {
      path.push_back(*it);
    }
    path.insert(path.end(), base_path->begin(), base_path->end());
  }
  return path;
}

}  // namespace

std::optional<Pipeline> route_family(const SolutionGraph& sg,
                                     const FaultSet& faults) {
  if (faults.size() > sg.k()) return std::nullopt;
  if (auto path = route_family_rec(sg, faults)) {
    if (auto certified_pipeline = certified(sg, faults, std::move(*path))) {
      return certified_pipeline;
    }
  }
  // Structure didn't match a peelable extension chain (or a peel guess
  // went wrong): fall back to the exact solver so the router is total.
  const auto out = verify::find_pipeline(sg, faults);
  if (out.status != verify::SolveStatus::kFound) return std::nullopt;
  return out.pipeline;
}

}  // namespace kgdp::reconfig
