// Constructive reconfiguration: O(n) routers extracted from the paper's
// existence proofs, as an alternative to the exact search solver.
//
//  * route_g1k / route_g2k follow the Lemma 3.7 / 3.9 proofs verbatim
//    (partition into k+1 / k+2 parts, pick the healthy part(s), spell the
//    pipeline out directly).
//  * route_family handles any graph produced by iterating the Lemma 3.6
//    extension (i.e. every k <= 3 family graph from the factory): it
//    peels extension layers — the last k+1 nodes are the layer's input
//    terminals, their neighborhood I is the relabeled clique — applies
//    the two cases of the Lemma 3.6 proof, and recurses; the constant-
//    size base graph at the bottom is routed with the exact solver. Total
//    work is linear in n plus a constant-size solve, so it reconfigures
//    million-node family graphs in milliseconds where general search
//    would wander.
//
// Every router certifies its output against kgd::check_pipeline before
// returning; nullopt means no pipeline exists for this fault set (or the
// graph is not of the expected shape).
#pragma once

#include <optional>

#include "kgd/labeled_graph.hpp"
#include "kgd/pipeline.hpp"

namespace kgdp::reconfig {

using kgd::FaultSet;
using kgd::Pipeline;
using kgd::SolutionGraph;

// Lemma 3.7 proof. Requires a graph shaped like make_g1k(k).
std::optional<Pipeline> route_g1k(const SolutionGraph& sg,
                                  const FaultSet& faults);

// Lemma 3.9 proof. Requires a graph shaped like make_g2k(k).
std::optional<Pipeline> route_g2k(const SolutionGraph& sg,
                                  const FaultSet& faults);

// Lemma 3.6 proof, applied recursively. Works on any solution graph built
// by extend()/make_small_k_family()/build_solution() with k <= 3 (and on
// un-extended bases, where it degrades to the exact solver).
std::optional<Pipeline> route_family(const SolutionGraph& sg,
                                     const FaultSet& faults);

}  // namespace kgdp::reconfig
