// Orbit-keyed reconfiguration atlas. A certified GD graph exists to
// answer one question fast: "faults F just happened — give me the new
// pipeline." Routes are invariant up to the label-respecting
// automorphism group, so the atlas stores one precomputed pipeline per
// (graph fingerprint, orbit-canonical fault mask) and serves every
// member of the orbit by transporting the canonical route through the
// minimising group element (fault/canonical.hpp's transport BFS).
//
// RouteAtlas is read-mostly and reader-lock-free: entries live in
// sharded hash maps published as std::shared_ptr snapshots (RCU —
// readers atomically load a snapshot and never touch a writer's lock;
// writers copy their shard under a per-shard mutex and swap the
// pointer). Lookups therefore cost one atomic load plus one hash probe,
// which is what makes the kgdd `route` hot path scale.
//
// Router is the serving engine: canonicalize, look up, fall back to the
// deterministic constructive routers (reconfig/route.hpp) on a miss,
// warm the atlas in place, and transport back. The fallback computes
// the *canonical* orbit's route — never the raw query's — so a route
// served from a warm atlas is bit-identical to one computed on a cold
// miss, and to one computed with no atlas at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/canonical.hpp"
#include "graph/automorphism.hpp"
#include "kgd/labeled_graph.hpp"
#include "kgd/pipeline.hpp"

namespace kgdp::reconfig {

struct RouteAtlasStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;       // entries actually added
  std::uint64_t rejected_full = 0; // inserts dropped at max_entries
  std::uint64_t entries = 0;       // current population
};

// What an atlas file header declares (returned by load/peek).
struct RouteAtlasFileInfo {
  std::uint64_t graph_fp = 0;
  int n = 0;
  int k = 0;
  std::uint64_t entries = 0;
};

class RouteAtlas {
 public:
  // `max_entries` bounds the population (warms past the cap are counted
  // and dropped, so a hostile fault stream cannot grow the daemon
  // unboundedly). All structural memory is per-shard; entry storage
  // grows with population.
  explicit RouteAtlas(std::size_t max_entries);

  RouteAtlas(const RouteAtlas&) = delete;
  RouteAtlas& operator=(const RouteAtlas&) = delete;

  // Reader-lock-free exact probe. True on a hit, with *path set to the
  // stored canonical route (empty = proven infeasible for this orbit).
  bool lookup(std::uint64_t graph_fp, std::uint64_t canon_mask,
              std::vector<graph::Node>* path) const;

  // Inserts (or confirms) an entry. Racing inserts of one key are
  // benign: canonical routes are deterministic, so duplicates agree.
  // False only when the atlas is full and the key is new.
  bool insert(std::uint64_t graph_fp, std::uint64_t canon_mask,
              std::vector<graph::Node> path);

  RouteAtlasStats stats() const;
  std::size_t size() const { return entries_.load(std::memory_order_relaxed); }
  std::size_t max_entries() const { return max_entries_; }

  // Line-oriented artifact I/O ("kgdp-atlas 1" header). save() writes
  // every entry keyed by `graph_fp`; load() merges a saved artifact into
  // this atlas and returns its header info. Throws std::runtime_error on
  // malformed input. expected_fp != 0 rejects an artifact built for a
  // different graph.
  void save(std::ostream& out, std::uint64_t graph_fp, int n, int k) const;
  RouteAtlasFileInfo load(std::istream& in, std::uint64_t expected_fp = 0);

 private:
  struct Key {
    std::uint64_t fp = 0;
    std::uint64_t mask = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  using Map = std::unordered_map<Key, std::vector<graph::Node>, KeyHash>;

  static constexpr std::size_t kShards = 64;

  struct Shard {
    // RCU snapshot: readers atomic-load, writers copy-and-swap under mu.
    std::atomic<std::shared_ptr<const Map>> snapshot;
    std::mutex mu;
  };

  static std::size_t shard_index(const Key& key);

  std::size_t max_entries_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::uint64_t> entries_{0};
  mutable std::atomic<std::uint64_t> hits_{0}, misses_{0};
  std::atomic<std::uint64_t> inserts_{0}, rejected_full_{0};
};

// The serving engine: owns the symmetry machinery for one graph and
// resolves fault sets to certified pipelines, through the atlas when one
// is attached. Thread-safe: route() is const, the atlas synchronises
// internally, and the caller provides per-thread canonicalizer scratch.
class Router {
 public:
  // `sg` must outlive the router; `atlas` may be nullptr (atlas-off).
  // Routes are bit-identical with or without an atlas, and regardless of
  // hit/miss/warm history — the miss path computes the same canonical
  // route the atlas would have stored.
  Router(const kgd::SolutionGraph& sg, RouteAtlas* atlas);

  struct Result {
    bool feasible = false;
    kgd::Pipeline pipeline;  // set when feasible
    // Observability only; never part of the reply body (it would break
    // the atlas-on/off bit-identity contract).
    bool atlas_hit = false;
    bool warmed = false;
  };

  // Resolves one fault set. Deterministic; safe from many threads.
  Result route(const kgd::FaultSet& faults,
               fault::FaultCanonicalizer::Scratch& scratch) const;

  // Precompute pass: canonical route for every orbit representative with
  // <= max_faults faults in shard `shard_index` of `shard_count`
  // (contiguous slot ranges, same tiling as CheckSession::shard_range).
  // Requires an attached atlas and a <= 64-node graph. Returns entries
  // inserted; *slots_total (optional) reports the unsharded slot count.
  std::uint64_t build_atlas(int max_faults, std::uint32_t shard_index,
                            std::uint32_t shard_count,
                            std::uint64_t* slots_total = nullptr) const;

  const kgd::SolutionGraph& graph() const { return sg_; }
  std::uint64_t graph_fp() const { return graph_fp_; }
  const graph::AutomorphismList& automorphisms() const { return autos_; }
  RouteAtlas* atlas() const { return atlas_; }

 private:
  // Deterministic canonical-route computation shared by the miss path
  // and the precompute pass (empty = infeasible).
  std::vector<graph::Node> compute_route(const kgd::FaultSet& faults) const;

  const kgd::SolutionGraph& sg_;
  RouteAtlas* atlas_;
  std::uint64_t graph_fp_ = 0;
  graph::AutomorphismList autos_;
  fault::FaultCanonicalizer canon_;
};

}  // namespace kgdp::reconfig
