#include "reconfig/atlas.hpp"

#include <algorithm>
#include <bit>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "fault/orbit_enumerator.hpp"
#include "reconfig/route.hpp"
#include "verify/check_session.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::reconfig {

namespace {

inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t mask_of(const kgd::FaultSet& faults) {
  std::uint64_t mask = 0;
  for (graph::Node v : faults.nodes()) mask |= std::uint64_t{1} << v;
  return mask;
}

std::vector<graph::Node> nodes_of(std::uint64_t mask) {
  std::vector<graph::Node> nodes;
  for (std::uint64_t m = mask; m; m &= m - 1) {
    nodes.push_back(static_cast<graph::Node>(std::countr_zero(m)));
  }
  return nodes;
}

void expect_word(std::istream& in, const char* keyword) {
  std::string word;
  if (!(in >> word) || word != keyword) {
    throw std::runtime_error(std::string("route atlas: expected '") +
                             keyword + "', got '" + word + "'");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// RouteAtlas
// ---------------------------------------------------------------------------

std::size_t RouteAtlas::KeyHash::operator()(const Key& k) const {
  return static_cast<std::size_t>(mix64(k.fp ^ mix64(k.mask)));
}

std::size_t RouteAtlas::shard_index(const Key& key) {
  // Top bits: the map's own bucket index uses the low bits of the hash,
  // so shard selection must not correlate with them.
  return static_cast<std::size_t>(mix64(key.mask ^ (key.fp * 3)) >> 58) %
         kShards;
}

RouteAtlas::RouteAtlas(std::size_t max_entries)
    : max_entries_(max_entries), shards_(new Shard[kShards]) {
  const auto empty = std::make_shared<const Map>();
  for (std::size_t i = 0; i < kShards; ++i) {
    shards_[i].snapshot.store(empty, std::memory_order_release);
  }
}

bool RouteAtlas::lookup(std::uint64_t graph_fp, std::uint64_t canon_mask,
                        std::vector<graph::Node>* path) const {
  const Key key{graph_fp, canon_mask};
  const std::shared_ptr<const Map> snap =
      shards_[shard_index(key)].snapshot.load(std::memory_order_acquire);
  const auto it = snap->find(key);
  if (it == snap->end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *path = it->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool RouteAtlas::insert(std::uint64_t graph_fp, std::uint64_t canon_mask,
                        std::vector<graph::Node> path) {
  const Key key{graph_fp, canon_mask};
  Shard& shard = shards_[shard_index(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const std::shared_ptr<const Map> cur =
      shard.snapshot.load(std::memory_order_acquire);
  if (cur->find(key) != cur->end()) return true;  // duplicates agree
  if (entries_.load(std::memory_order_relaxed) >= max_entries_) {
    rejected_full_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Copy-on-write publish: readers keep the old snapshot alive for as
  // long as they hold it; nothing is ever mutated in place.
  auto next = std::make_shared<Map>(*cur);
  next->emplace(key, std::move(path));
  shard.snapshot.store(std::shared_ptr<const Map>(std::move(next)),
                       std::memory_order_release);
  entries_.fetch_add(1, std::memory_order_relaxed);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

RouteAtlasStats RouteAtlas::stats() const {
  RouteAtlasStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

void RouteAtlas::save(std::ostream& out, std::uint64_t graph_fp, int n,
                      int k) const {
  // Deterministic artifact: entries sorted by canonical mask so shard
  // builds merged in any order serialize identically.
  std::vector<std::pair<std::uint64_t, const std::vector<graph::Node>*>> rows;
  std::vector<std::shared_ptr<const Map>> pinned(kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    pinned[i] = shards_[i].snapshot.load(std::memory_order_acquire);
    for (const auto& [key, path] : *pinned[i]) {
      if (key.fp == graph_fp) rows.emplace_back(key.mask, &path);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out << "kgdp-atlas 1\n";
  out << "fp " << graph_fp << "\n";
  out << "n " << n << "\n";
  out << "k " << k << "\n";
  out << "entries " << rows.size() << "\n";
  for (const auto& [mask, path] : rows) {
    out << "e " << mask << " " << path->size();
    for (graph::Node v : *path) out << " " << v;
    out << "\n";
  }
  out << "end\n";
}

RouteAtlasFileInfo RouteAtlas::load(std::istream& in,
                                    std::uint64_t expected_fp) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "kgdp-atlas") {
    throw std::runtime_error("route atlas: not a kgdp-atlas file");
  }
  if (version != 1) {
    throw std::runtime_error("route atlas: unsupported version " +
                             std::to_string(version));
  }
  RouteAtlasFileInfo info;
  expect_word(in, "fp");
  if (!(in >> info.graph_fp)) {
    throw std::runtime_error("route atlas: bad fingerprint");
  }
  expect_word(in, "n");
  if (!(in >> info.n)) throw std::runtime_error("route atlas: bad n");
  expect_word(in, "k");
  if (!(in >> info.k)) throw std::runtime_error("route atlas: bad k");
  expect_word(in, "entries");
  if (!(in >> info.entries)) {
    throw std::runtime_error("route atlas: bad entry count");
  }
  if (expected_fp != 0 && info.graph_fp != expected_fp) {
    throw std::runtime_error(
        "route atlas: artifact was built for a different graph "
        "(fingerprint mismatch)");
  }
  for (std::uint64_t i = 0; i < info.entries; ++i) {
    expect_word(in, "e");
    std::uint64_t mask = 0;
    std::size_t len = 0;
    if (!(in >> mask >> len) || len > 4096) {
      throw std::runtime_error("route atlas: malformed entry");
    }
    std::vector<graph::Node> path(len);
    for (std::size_t j = 0; j < len; ++j) {
      if (!(in >> path[j])) {
        throw std::runtime_error("route atlas: truncated entry path");
      }
    }
    insert(info.graph_fp, mask, std::move(path));
  }
  expect_word(in, "end");
  return info;
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

Router::Router(const kgd::SolutionGraph& sg, RouteAtlas* atlas)
    : sg_(sg),
      atlas_(atlas),
      graph_fp_(verify::graph_fingerprint(sg)),
      autos_(graph::solution_automorphisms(sg)),
      canon_(&autos_) {}

std::vector<graph::Node> Router::compute_route(
    const kgd::FaultSet& faults) const {
  // Within the certified budget the constructive routers answer in O(n)
  // (with the exact solver as their internal safety net); past it only
  // the exact solver can decide. Both are deterministic.
  std::optional<kgd::Pipeline> p;
  if (faults.size() <= sg_.k()) {
    p = route_family(sg_, faults);
  } else {
    auto out = verify::find_pipeline(sg_, faults);
    if (out.status == verify::SolveStatus::kFound) {
      p = std::move(out.pipeline);
    }
  }
  if (!p) return {};
  return kgd::normalize_pipeline(sg_, std::move(p->path)).path;
}

Router::Result Router::route(const kgd::FaultSet& faults,
                             fault::FaultCanonicalizer::Scratch& scratch)
    const {
  Result res;
  const int nn = sg_.num_nodes();

  const auto direct = [&]() -> Result& {
    std::vector<graph::Node> path = compute_route(faults);
    if (!path.empty()) {
      res.feasible = true;
      res.pipeline.path = std::move(path);
    }
    return res;
  };

  // The orbit machinery is mask-based; larger graphs (outside exhaustive
  // certification reach anyway) are served by direct computation.
  if (nn > 64) return direct();

  const std::uint64_t mask = mask_of(faults);
  std::uint64_t canon = 0;
  graph::Permutation sigma;
  if (!canon_.canonical_mask_transport(mask, nn, scratch, &canon, &sigma)) {
    return direct();  // pathological orbit: bypass, stay deterministic
  }

  std::vector<graph::Node> cpath;
  res.atlas_hit =
      atlas_ != nullptr && atlas_->lookup(graph_fp_, canon, &cpath);
  if (!res.atlas_hit) {
    cpath = compute_route(kgd::FaultSet(nn, nodes_of(canon)));
    if (atlas_ != nullptr) {
      res.warmed = atlas_->insert(graph_fp_, canon, cpath);
    }
  }
  if (cpath.empty()) return res;  // infeasible for the whole orbit

  // Transport: sigma maps the query mask to the canonical mask, so the
  // inverse image of the canonical route avoids exactly the query's
  // faults (sigma is label-respecting, so roles carry over too).
  graph::Permutation inv(static_cast<std::size_t>(nn));
  for (int v = 0; v < nn; ++v) inv[sigma[v]] = v;
  std::vector<graph::Node> path(cpath.size());
  for (std::size_t i = 0; i < cpath.size(); ++i) path[i] = inv[cpath[i]];
  if (!kgd::check_pipeline(sg_, faults, path).ok) {
    // Defensive only: transport of a certified canonical route cannot
    // fail unless the atlas was fed a foreign artifact.
    return direct();
  }
  res.feasible = true;
  res.pipeline = kgd::normalize_pipeline(sg_, std::move(path));
  return res;
}

std::uint64_t Router::build_atlas(int max_faults, std::uint32_t shard_index,
                                  std::uint32_t shard_count,
                                  std::uint64_t* slots_total) const {
  if (atlas_ == nullptr) {
    throw std::runtime_error("atlas build: no atlas attached");
  }
  if (sg_.num_nodes() > 64) {
    throw std::runtime_error(
        "atlas build: graphs over 64 nodes are served without an atlas");
  }
  if (shard_count == 0 || shard_index >= shard_count) {
    throw std::runtime_error("atlas build: bad shard spec");
  }
  fault::OrbitEnumerator orbits(sg_.num_nodes(), max_faults, autos_);
  const std::uint64_t total = orbits.num_orbits();
  if (slots_total != nullptr) *slots_total = total;
  const auto [begin, end] =
      verify::CheckSession::shard_range(total, shard_index, shard_count);
  auto scratch = std::make_unique<fault::FaultCanonicalizer::Scratch>();
  std::uint64_t inserted = 0;
  std::vector<graph::Node> existing;
  for (std::uint64_t slot = begin; slot < end; ++slot) {
    const kgd::FaultSet rep = orbits.representative(slot);
    std::uint64_t canon = 0;
    if (!canon_.canonical_mask(mask_of(rep), *scratch, &canon)) {
      continue;  // orbit past the transport cap: serving bypasses it too
    }
    if (atlas_->lookup(graph_fp_, canon, &existing)) continue;
    if (atlas_->insert(graph_fp_, canon,
                       compute_route(kgd::FaultSet(sg_.num_nodes(),
                                                   nodes_of(canon))))) {
      ++inserted;
    }
  }
  return inserted;
}

}  // namespace kgdp::reconfig
