#include "service/protocol.hpp"

namespace kgdp::service {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame: return "bad_frame";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownMethod: return "unknown_method";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kFrameTooLarge: return "frame_too_large";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

namespace {
io::Json stamp(const std::string& req_id, const std::string& tag,
               const std::string& type, io::JsonObject body) {
  body["schema_version"] = io::kSchemaVersion;
  body["req"] = req_id;
  body["type"] = type;
  if (!tag.empty()) body["tag"] = tag;
  return io::Json(std::move(body));
}
}  // namespace

io::Json make_result(const std::string& req_id, const std::string& tag,
                     io::JsonObject body) {
  return stamp(req_id, tag, "result", std::move(body));
}

io::Json make_error(const std::string& req_id, const std::string& tag,
                    ErrorCode code, const std::string& message) {
  io::JsonObject body;
  body["code"] = error_code_name(code);
  body["message"] = message;
  return stamp(req_id, tag, "error", std::move(body));
}

io::Json make_event(const std::string& req_id, const std::string& tag,
                    const std::string& type, io::JsonObject body) {
  return stamp(req_id, tag, type, std::move(body));
}

bool is_terminal_frame(const io::Json& frame) {
  const io::Json* type = frame.find("type");
  if (type == nullptr || !type->is_string()) return true;  // fail safe
  return type->as_string() == "result" || type->as_string() == "error";
}

}  // namespace kgdp::service
