#include "service/protocol.hpp"

namespace kgdp::service {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame: return "bad_frame";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownMethod: return "unknown_method";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kFrameTooLarge: return "frame_too_large";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

namespace {
io::Json stamp(const std::string& req_id, const std::string& tag,
               const std::string& type, io::JsonObject body) {
  body["schema_version"] = io::kSchemaVersion;
  body["req"] = req_id;
  body["type"] = type;
  if (!tag.empty()) body["tag"] = tag;
  return io::Json(std::move(body));
}
}  // namespace

io::Json make_result(const std::string& req_id, const std::string& tag,
                     io::JsonObject body) {
  return stamp(req_id, tag, "result", std::move(body));
}

io::Json make_error(const std::string& req_id, const std::string& tag,
                    ErrorCode code, const std::string& message) {
  io::JsonObject body;
  body["code"] = error_code_name(code);
  body["message"] = message;
  return stamp(req_id, tag, "error", std::move(body));
}

io::Json make_event(const std::string& req_id, const std::string& tag,
                    const std::string& type, io::JsonObject body) {
  return stamp(req_id, tag, type, std::move(body));
}

io::Json Envelope::result(io::JsonObject body) const {
  return make_result(req_id, tag, std::move(body));
}

io::Json Envelope::error(ErrorCode code, const std::string& message) const {
  return make_error(req_id, tag, code, message);
}

io::Json Envelope::event(const std::string& type, io::JsonObject body) const {
  return make_event(req_id, tag, type, std::move(body));
}

bool parse_envelope(const std::string& frame, Envelope* env,
                    io::Json* reply) {
  try {
    env->request = io::Json::parse(frame);
  } catch (const io::JsonParseError& e) {
    *reply = env->error(ErrorCode::kBadFrame, e.what());
    return false;
  }
  if (!env->request.is_object()) {
    *reply = env->error(ErrorCode::kBadFrame,
                        "request frame must be a JSON object");
    return false;
  }

  // Recover the tag first so even rejects propagate it.
  if (const io::Json* tag = env->request.find("tag")) {
    if (!tag->is_string()) {
      *reply = env->error(ErrorCode::kBadRequest,
                          "field 'tag' must be a string");
      return false;
    }
    env->tag = tag->as_string();
  }

  const io::Json* method = env->request.find("method");
  if (method == nullptr || !method->is_string() ||
      method->as_string().empty()) {
    *reply = env->error(ErrorCode::kBadRequest,
                        "missing required string field 'method'");
    return false;
  }
  env->method = method->as_string();

  if (const io::Json* ver = env->request.find("schema_version")) {
    if (!ver->is_int() || ver->as_int() < 1 ||
        ver->as_int() > io::kSchemaVersion) {
      *reply = env->error(
          ErrorCode::kBadRequest,
          "unsupported schema_version (this server speaks 1.." +
              std::to_string(io::kSchemaVersion) + ")");
      return false;
    }
    env->schema_version = static_cast<int>(ver->as_int());
  }

  const io::Json* params = env->params();
  if (params != nullptr && !params->is_object()) {
    *reply = env->error(ErrorCode::kBadRequest, "'params' must be an object");
    return false;
  }
  return true;
}

bool is_terminal_frame(const io::Json& frame) {
  const io::Json* type = frame.find("type");
  if (type == nullptr || !type->is_string()) return true;  // fail safe
  return type->as_string() == "result" || type->as_string() == "error";
}

}  // namespace kgdp::service
