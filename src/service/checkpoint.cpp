#include "service/checkpoint.hpp"

#include <sstream>
#include <stdexcept>

#include "util/durable_file.hpp"
#include "util/log.hpp"

namespace kgdp::service {

namespace {

void expect_keyword(std::istream& in, const char* keyword) {
  std::string word;
  if (!(in >> word) || word != keyword) {
    throw std::runtime_error(std::string("session checkpoint: expected '") +
                             keyword + "'");
  }
}

std::uint64_t read_u64(std::istream& in, const char* keyword) {
  expect_keyword(in, keyword);
  std::uint64_t v = 0;
  if (!(in >> v)) {
    throw std::runtime_error(std::string("session checkpoint: bad ") +
                             keyword);
  }
  return v;
}

}  // namespace

verify::CheckRequest SessionCheckpoint::request() const {
  verify::CheckRequest req;
  req.mode = mode;
  req.max_faults = max_faults;
  req.samples = samples;
  req.seed = seed;
  req.options.prune = prune;
  return req;
}

void save_session_checkpoint(std::ostream& out, const SessionCheckpoint& cp) {
  out << "kgdp-check-session 1\n";
  out << "n " << cp.n << '\n';
  out << "k " << cp.k << '\n';
  out << "mode "
      << (cp.mode == verify::CheckMode::kExhaustive ? "exhaustive"
                                                    : "sampled")
      << '\n';
  out << "max_faults " << cp.max_faults << '\n';
  out << "samples " << cp.samples << '\n';
  out << "seed " << cp.seed << '\n';
  out << "prune "
      << (cp.prune == verify::PruneMode::kAuto ? "auto" : "off") << '\n';
  out << "chunk " << cp.chunk << '\n';
  out << "cursor\n";
  out << cp.cursor;  // CheckSession::save block; already ends in "end\n"
}

SessionCheckpoint load_session_checkpoint(std::istream& in) {
  expect_keyword(in, "kgdp-check-session");
  int version = 0;
  if (!(in >> version) || version != 1) {
    throw std::runtime_error("session checkpoint: unsupported version");
  }
  SessionCheckpoint cp;
  cp.n = static_cast<int>(read_u64(in, "n"));
  cp.k = static_cast<int>(read_u64(in, "k"));
  expect_keyword(in, "mode");
  std::string mode;
  if (!(in >> mode) || (mode != "exhaustive" && mode != "sampled")) {
    throw std::runtime_error("session checkpoint: bad mode");
  }
  cp.mode = mode == "exhaustive" ? verify::CheckMode::kExhaustive
                                 : verify::CheckMode::kSampled;
  cp.max_faults = static_cast<int>(read_u64(in, "max_faults"));
  cp.samples = read_u64(in, "samples");
  cp.seed = read_u64(in, "seed");
  expect_keyword(in, "prune");
  std::string prune;
  if (!(in >> prune) || (prune != "auto" && prune != "off")) {
    throw std::runtime_error("session checkpoint: bad prune");
  }
  cp.prune = prune == "auto" ? verify::PruneMode::kAuto
                             : verify::PruneMode::kOff;
  cp.chunk = read_u64(in, "chunk");
  expect_keyword(in, "cursor");
  // The rest of the stream is the cursor block, ending in "end".
  std::ostringstream cursor;
  std::string word;
  bool closed = false;
  while (in >> word) {
    cursor << word;
    if (word == "end") {
      cursor << '\n';
      closed = true;
      break;
    }
    cursor << ' ';
  }
  if (!closed) {
    throw std::runtime_error("session checkpoint: truncated cursor");
  }
  cp.cursor = cursor.str();
  return cp;
}

void write_session_checkpoint_file(const std::string& path,
                                   const SessionCheckpoint& cp) {
  std::ostringstream out;
  save_session_checkpoint(out, cp);
  util::durable_write_file(path, out.str());
}

SessionCheckpoint load_session_checkpoint_file(
    const std::string& path, const util::CheckpointLoadOptions& opts) {
  SessionCheckpoint cp;
  util::CheckpointLoadInfo info;
  util::load_checkpoint_file(
      path, [&cp](std::istream& in) { cp = load_session_checkpoint(in); },
      &info, opts);
  for (const std::string& q : info.quarantined) {
    util::log_warn("session checkpoint quarantined: ", q);
  }
  if (info.from_backup) {
    util::log_warn("session checkpoint ", path,
                   ": primary unusable, restored from backup generation");
  }
  return cp;
}

}  // namespace kgdp::service
