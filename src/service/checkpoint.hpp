// Drain checkpoints for streaming verify sessions: everything a later
// daemon needs to rebuild the graph and CheckRequest and restore the
// embedded CheckSession cursor — so a session interrupted by SIGTERM
// resumes to the identical verdict and counters. Line-oriented
// `kgdp-check-session` text in the same family as the campaign
// checkpoint format, persisted through util::durable_file (CRC32C
// envelope, fsync'd atomic replace, `.bak` generation).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/durable_file.hpp"
#include "verify/check_session.hpp"

namespace kgdp::service {

struct SessionCheckpoint {
  int n = 0, k = 0;
  verify::CheckMode mode = verify::CheckMode::kExhaustive;
  int max_faults = 0;
  std::uint64_t samples = 0;
  std::uint64_t seed = 0;
  verify::PruneMode prune = verify::PruneMode::kAuto;
  std::uint64_t chunk = 0;
  std::string cursor;  // CheckSession::save block, verbatim

  // The CheckRequest this checkpoint pins down (pool left null).
  verify::CheckRequest request() const;
};

void save_session_checkpoint(std::ostream& out, const SessionCheckpoint& cp);
// Throws std::runtime_error on malformed input.
SessionCheckpoint load_session_checkpoint(std::istream& in);

// Crash-safe write via util::durable_write_file; throws
// std::runtime_error on IO failure.
void write_session_checkpoint_file(const std::string& path,
                                   const SessionCheckpoint& cp);
// Classified load via util::load_checkpoint_file: accepts legacy
// un-enveloped files and, under the default options, quarantines bad
// candidates and falls back to the `.bak` generation; pass both
// options false to load a file the caller does not own strictly
// read-only. Throws util::CheckpointError.
SessionCheckpoint load_session_checkpoint_file(
    const std::string& path, const util::CheckpointLoadOptions& opts = {});

}  // namespace kgdp::service
