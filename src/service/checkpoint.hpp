// Drain checkpoints for streaming verify sessions: everything a later
// daemon needs to rebuild the graph and CheckRequest and restore the
// embedded CheckSession cursor — so a session interrupted by SIGTERM
// resumes to the identical verdict and counters. Line-oriented
// `kgdp-check-session` text in the same family as the campaign
// checkpoint format, written atomically (tmp + rename).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "verify/check_session.hpp"

namespace kgdp::service {

struct SessionCheckpoint {
  int n = 0, k = 0;
  verify::CheckMode mode = verify::CheckMode::kExhaustive;
  int max_faults = 0;
  std::uint64_t samples = 0;
  std::uint64_t seed = 0;
  verify::PruneMode prune = verify::PruneMode::kAuto;
  std::uint64_t chunk = 0;
  std::string cursor;  // CheckSession::save block, verbatim

  // The CheckRequest this checkpoint pins down (pool left null).
  verify::CheckRequest request() const;
};

void save_session_checkpoint(std::ostream& out, const SessionCheckpoint& cp);
// Throws std::runtime_error on malformed input.
SessionCheckpoint load_session_checkpoint(std::istream& in);

// Atomic write (tmp + rename); throws std::runtime_error on IO failure.
void write_session_checkpoint_file(const std::string& path,
                                   const SessionCheckpoint& cp);
SessionCheckpoint load_session_checkpoint_file(const std::string& path);

}  // namespace kgdp::service
