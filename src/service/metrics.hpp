// Per-method request counters and latency histograms for kgdd. Each
// terminal reply records (method, outcome, seconds); the `stats` request
// returns a JSON snapshot and optionally appends it as JSONL to a
// metrics sink. Latency quantiles come from log2 microsecond buckets —
// coarse (upper bucket edge), but allocation-free and O(1) per record,
// which is what a hot serving path wants. All calls are loop-thread
// only; no locking.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "io/json.hpp"

namespace kgdp::service {

// Terminal outcome of a request, one counter each.
enum class Outcome { kOk, kError, kOverloaded, kCancelled, kDrained };

class Metrics {
 public:
  void record(const std::string& method, Outcome outcome, double seconds);

  // {"methods": {name: {count, ok, error, overloaded, cancelled,
  //  drained, mean_ms, p50_ms, p99_ms}}, "total_requests": N}
  io::Json snapshot() const;

  // One JSONL line per method (event "metrics", plus the per-method
  // fields), matching the campaign telemetry idiom.
  void dump_jsonl(std::ostream& out) const;

  std::uint64_t total_requests() const { return total_; }

 private:
  struct PerMethod {
    std::uint64_t count = 0;
    std::array<std::uint64_t, 5> by_outcome = {};
    // bucket i counts latencies in [2^i, 2^(i+1)) microseconds.
    std::array<std::uint64_t, 40> latency_us_log2 = {};
    double sum_seconds = 0.0;
    double quantile_ms(double q) const;
  };

  io::JsonObject method_fields(const PerMethod& m) const;

  std::map<std::string, PerMethod> methods_;
  std::uint64_t total_ = 0;
};

}  // namespace kgdp::service
