// kgdd request router and session registry. Sits between the
// content-agnostic net::FrameServer and the checker/construction/sim/
// reconfiguration libraries:
//
//   * every inbound frame is parsed into a service::Envelope (request
//     id, tag, method, declared schema_version) and answered with
//     frames stamped through that envelope — one reply shape for every
//     method;
//   * quick requests (construct, sim.run, campaign.status, route) run
//     as one util::ThreadPool task each, behind a bounded admission
//     rule — when every worker is busy and max_queue requests are
//     already waiting, the request is shed with an `overloaded` error
//     instead of ever blocking the event loop;
//   * `route` answers from the shared reconfig::RouteAtlas when the
//     orbit-canonical key hits, computes-and-warms on a miss, and is
//     bit-identical either way (the atlas stores exactly what the miss
//     path computes);
//   * `verify` runs as a streaming session: the CheckSession advances
//     in bounded chunks (one pool task per chunk), the client gets
//     `accepted` + per-chunk `progress` frames, may `cancel` mid-sweep,
//     and a draining daemon checkpoints the cursor to disk so a later
//     `verify {"resume": path}` reproduces the uninterrupted verdict;
//   * `lease` is the fleet coordinator's worker-side session type: a
//     lease-bounded exhaustive slice ([begin, end) orbit slots) fenced
//     by a (lease id, epoch) pair. Progress frames stream the cursor
//     (the coordinator's reassignment point — nothing touches disk),
//     `lease.release` truncates the unswept tail at the next chunk
//     boundary (the steal handshake) or surrenders the lease, and any
//     frame carrying a stale epoch is rejected so a worker that missed
//     a reassignment can never double-certify its old range.
//
// Threading contract: every Service method and callback runs on the
// event-loop thread, except router_for() which pool tasks call behind
// routers_mu_. Pool tasks touch only their own session (guarded by the
// running_chunk flag) or job-local state, and hand results back via
// EventLoop::post.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "io/json.hpp"
#include "kgd/labeled_graph.hpp"
#include "net/event_loop.hpp"
#include "net/server.hpp"
#include "reconfig/atlas.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "verify/check_session.hpp"
#include "verify/verdict_cache.hpp"

namespace kgdp::service {

struct ServiceConfig {
  unsigned threads = 0;  // worker pool size; 0 = hardware concurrency
  // Admission rule: a job is shed with `overloaded` when in_flight() >=
  // threads + max_queue (all workers busy and max_queue already waiting).
  std::size_t max_queue = 64;
  // Cap on concurrently admitted streaming verify sessions.
  std::size_t max_sessions = 8;
  // Default work items per verify chunk (overridable per request).
  std::uint64_t default_chunk = 512;
  // Where SIGTERM drain writes session checkpoints.
  std::string drain_dir = ".";
  // Also checkpoint each running session to drain_dir every this many
  // chunks (0 = drain-only), bounding what a SIGKILL can lose to the
  // last N chunks. Progress frames carry the path when a write lands.
  std::uint64_t session_checkpoint_every = 0;
  // Optional JSONL sink appended on every `stats` request and at drain.
  std::string metrics_path;
  // Orbit-canonical verdict cache shared across all verify sessions
  // (entries; 0 = off). Runtime accelerator only: verdicts are
  // bit-identical with or without it.
  std::uint64_t cache_entries = 0;
  // Orbit-keyed route atlas shared across all `route` requests
  // (entries; 0 = off). Also a pure accelerator: the atlas stores
  // exactly what the miss path computes, so replies are bit-identical
  // with or without it.
  std::uint64_t atlas_entries = 1 << 20;
  // Atlas artifacts (`kgd_cli atlas build`) preloaded at startup.
  // Construction throws on an unreadable or malformed artifact.
  std::vector<std::string> atlas_paths;
};

class Service {
 public:
  Service(net::EventLoop& loop, net::FrameServer& server,
          ServiceConfig config);
  ~Service();

  // net::FrameServer handler entry points (wired by the daemon).
  void handle_frame(std::uint64_t conn, std::string frame);
  void handle_close(std::uint64_t conn);
  void handle_abuse(std::uint64_t conn, const std::string& what);

  // Stops admitting work, checkpoints in-flight sessions to drain_dir,
  // flushes metrics, closes connections after their buffers flush, and
  // stops the event loop once everything lands. Idempotent.
  void begin_drain();

  bool draining() const { return draining_; }
  std::size_t active_sessions() const { return sessions_.size(); }
  util::ThreadPool& pool() { return pool_; }
  reconfig::RouteAtlas* route_atlas() { return route_atlas_.get(); }

 private:
  struct Session {
    std::string id;
    std::uint64_t conn = 0;
    Envelope env;  // the admitting request; stamps the whole stream
    int n = 0, k = 0;
    verify::CheckRequest req;  // options.pool stays null (chunk = task)
    std::uint64_t chunk = 0;
    std::string resume_path;  // non-empty when restoring a checkpoint
    std::optional<kgd::SolutionGraph> sg;
    std::unique_ptr<verify::CheckSession> session;
    // True while a pool task (creation or a chunk) owns the session's
    // compute state; finalization waits for the task to post back.
    bool running_chunk = false;
    bool cancelled = false;
    // Periodic-checkpoint cadence state (session_checkpoint_every > 0).
    std::uint64_t chunks_since_checkpoint = 0;
    bool wrote_checkpoint = false;
    util::Timer timer;
    // --- lease sessions only ---
    bool is_lease = false;
    std::string lease_id;
    std::uint64_t lease_epoch = 0;
    // Coordinator-streamed cursor to resume from (reassigned lease).
    std::string resume_cursor;
    // fleet.leave accepted: the session drains at its next chunk
    // boundary (cursor handed back, lease re-granted elsewhere) even
    // though the daemon itself keeps serving.
    bool leave_drain = false;
    // A lease.release that arrived while a chunk was in flight; applied
    // and answered (under its own envelope) at the chunk boundary.
    bool release_pending = false;
    bool release_has_truncate = false;
    std::uint64_t release_truncate_to = 0;
    Envelope release_env;
    // Loop-thread snapshots for `stats` (the live session's counters
    // move on a pool thread while a chunk runs).
    std::uint64_t last_items_done = 0, last_items_total = 0;
    util::Timer last_progress;  // heartbeat age = seconds since reset
  };

  // A lazily built (n, k) router: the graph and its automorphism-backed
  // Router, which borrows both the graph and the shared atlas.
  struct RouterEntry {
    RouterEntry(kgd::SolutionGraph g, reconfig::RouteAtlas* atlas)
        : sg(std::move(g)), router(sg, atlas) {}
    kgd::SolutionGraph sg;
    reconfig::Router router;
  };

  std::string next_req_id();

  // Frame/reply plumbing.
  void send(std::uint64_t conn, const io::Json& frame);
  void reply_terminal(std::uint64_t conn, const std::string& method,
                      const io::Json& frame, Outcome outcome,
                      double seconds);

  // Admission rule for one-shot jobs.
  bool admit_job() const;

  // Runs `work` on the pool; the returned (frame-body, outcome) is sent
  // as the request's terminal frame from the loop thread.
  struct JobReply {
    io::JsonObject body;          // result body when ok
    std::string error_message;    // non-empty selects an error frame
    ErrorCode error_code = ErrorCode::kInternal;
  };
  void submit_job(std::uint64_t conn, const Envelope& env,
                  std::function<JobReply()> work);

  // Request handlers (loop thread).
  void handle_verify(std::uint64_t conn, const Envelope& env);
  void handle_cancel(std::uint64_t conn, const Envelope& env);
  void handle_stats(std::uint64_t conn, const Envelope& env);
  void handle_route(std::uint64_t conn, const Envelope& env);
  void handle_lease(std::uint64_t conn, const Envelope& env);
  void handle_lease_release(std::uint64_t conn, const Envelope& env);
  // Applies a (possibly deferred) lease.release at a chunk boundary and
  // answers it under its own envelope.
  void apply_lease_release(Session& s, const Envelope& env,
                           bool has_truncate, std::uint64_t truncate_to);

  // The (n, k) router, built on first use. Callable from pool workers
  // (locks routers_mu_). Returns nullptr + fills *error/*code when the
  // construction is unsupported.
  std::shared_ptr<RouterEntry> router_for(int n, int k, std::string* error,
                                          ErrorCode* code);

  // Session machinery (loop thread unless noted).
  std::string session_checkpoint_path(const Session& s) const;
  // Durably snapshots the session's cursor to its drain-dir path; false
  // + *error on failure. Shared by drain and periodic checkpointing.
  bool write_session_checkpoint(Session& s, std::string* path,
                                std::string* error);
  void remove_session_checkpoints(const Session& s);
  void schedule_session_work(Session& s);  // submits creation/chunk task
  void chunk_done(const std::string& sid, const std::string& error,
                  ErrorCode code);
  void finalize_done(Session& s);
  void finalize_cancelled(Session& s);
  void finalize_drained(Session& s);
  void finalize_error(Session& s, ErrorCode code, const std::string& what);
  void destroy_session(const std::string& sid);
  void maybe_finish_drain();

  net::EventLoop& loop_;
  net::FrameServer& server_;
  ServiceConfig config_;
  util::ThreadPool pool_;
  Metrics metrics_;

  std::map<std::string, std::unique_ptr<Session>> sessions_;
  // Coordinator-chosen lease id -> session id, for lease.release lookup
  // and epoch fencing of re-grants. Entries are removed only when they
  // still name the session being destroyed (an epoch-bumped re-grant
  // overwrites the mapping while the fenced session winds down).
  std::map<std::string, std::string> lease_index_;
  // Worker-side fleet counters, surfaced by `stats`.
  struct FleetCounters {
    std::uint64_t granted = 0;    // lease sessions admitted
    std::uint64_t completed = 0;  // leases run to a terminal verdict
    std::uint64_t resumed = 0;    // grants carrying a resume cursor
    std::uint64_t truncated = 0;  // lease.release steals applied
    std::uint64_t released = 0;   // full releases (lease surrendered)
    std::uint64_t stale_rejected = 0;  // epoch-fenced frames refused
    // Durable-coordinator visibility: grants arriving from a restarted
    // coordinator incarnation / carrying a re-fence marker.
    std::uint64_t coordinator_resumes = 0;  // new generations observed
    std::uint64_t leases_refenced = 0;      // grants with refenced:true
    // Elastic membership announcements (fleet.join / fleet.leave).
    std::uint64_t workers_joined = 0;
    std::uint64_t workers_left = 0;
    // Highest grant `generation` seen; a strictly higher one counts a
    // coordinator resume (generation 0 = first incarnation, not one).
    std::uint64_t last_generation_seen = 0;
  } fleet_;
  // Solver engine counters absorbed from sessions as they are destroyed
  // (any terminal path); surfaced by `stats`. Live sessions are excluded
  // — their workers mutate counters off the loop thread.
  verify::SolverCounters solver_retired_;
  // Shared verdict cache (cache_entries > 0); sessions hold a raw
  // pointer, so it outlives them by construction order.
  std::unique_ptr<verify::VerdictCache> verdict_cache_;
  // Shared route atlas (atlas_entries > 0) and the lazily built per-
  // (n, k) routers serving it. routers_ is the one piece of state pool
  // workers touch directly — always behind routers_mu_.
  std::unique_ptr<reconfig::RouteAtlas> route_atlas_;
  std::mutex routers_mu_;
  std::map<std::pair<int, int>, std::shared_ptr<RouterEntry>> routers_;
  std::uint64_t next_req_ = 1;
  // Seeded at construction past any kgdd-s<N>.kgdp* left in drain_dir,
  // so ids — and with them checkpoint paths — never collide with a
  // previous boot's surviving resume data.
  std::uint64_t next_session_ = 1;
  std::size_t outstanding_jobs_ = 0;
  bool draining_ = false;
  bool drain_finalized_ = false;
};

}  // namespace kgdp::service
