#include "service/metrics.hpp"

#include <cmath>
#include <ostream>

namespace kgdp::service {

namespace {
std::size_t latency_bucket(double seconds) {
  const double us = seconds * 1e6;
  if (us < 1.0) return 0;
  const int b = static_cast<int>(std::floor(std::log2(us)));
  return static_cast<std::size_t>(b < 0 ? 0 : (b > 39 ? 39 : b));
}
}  // namespace

void Metrics::record(const std::string& method, Outcome outcome,
                     double seconds) {
  PerMethod& m = methods_[method];
  ++m.count;
  ++m.by_outcome[static_cast<std::size_t>(outcome)];
  ++m.latency_us_log2[latency_bucket(seconds)];
  m.sum_seconds += seconds;
  ++total_;
}

double Metrics::PerMethod::quantile_ms(double q) const {
  if (count == 0) return 0.0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < latency_us_log2.size(); ++b) {
    seen += latency_us_log2[b];
    if (seen >= rank) {
      // Upper edge of the bucket, in ms.
      return std::ldexp(1.0, static_cast<int>(b) + 1) / 1000.0;
    }
  }
  return std::ldexp(1.0, 40) / 1000.0;
}

io::JsonObject Metrics::method_fields(const PerMethod& m) const {
  io::JsonObject f;
  f["count"] = m.count;
  f["ok"] = m.by_outcome[static_cast<std::size_t>(Outcome::kOk)];
  f["error"] = m.by_outcome[static_cast<std::size_t>(Outcome::kError)];
  f["overloaded"] =
      m.by_outcome[static_cast<std::size_t>(Outcome::kOverloaded)];
  f["cancelled"] =
      m.by_outcome[static_cast<std::size_t>(Outcome::kCancelled)];
  f["drained"] = m.by_outcome[static_cast<std::size_t>(Outcome::kDrained)];
  f["mean_ms"] =
      m.count == 0 ? 0.0
                   : m.sum_seconds * 1000.0 / static_cast<double>(m.count);
  f["p50_ms"] = m.quantile_ms(0.50);
  f["p99_ms"] = m.quantile_ms(0.99);
  return f;
}

io::Json Metrics::snapshot() const {
  io::JsonObject methods;
  for (const auto& [name, m] : methods_) {
    methods[name] = io::Json(method_fields(m));
  }
  io::JsonObject out;
  out["methods"] = io::Json(std::move(methods));
  out["total_requests"] = total_;
  return io::Json(std::move(out));
}

void Metrics::dump_jsonl(std::ostream& out) const {
  std::uint64_t seq = 0;
  for (const auto& [name, m] : methods_) {
    io::JsonObject f = method_fields(m);
    f["event"] = "metrics";
    f["method"] = name;
    f["seq"] = seq++;
    f["schema_version"] = io::kSchemaVersion;
    out << io::Json(std::move(f)).dump() << '\n';
  }
  out.flush();
}

}  // namespace kgdp::service
