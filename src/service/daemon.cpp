#include "service/daemon.hpp"

#include <poll.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

#include "util/durable_file.hpp"
#include "util/log.hpp"
#include "util/stop_signal.hpp"

namespace kgdp::service {

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      server_(loop_, config_.server),
      service_(loop_, server_, config_.service) {
  // One client disconnecting mid-stream must not SIGPIPE-kill the
  // daemon; writes to dead sockets surface as EPIPE and close only the
  // one connection.
  net::ignore_sigpipe();
  // A previous daemon killed between open and rename leaks *.kgdp.tmp
  // in the drain dir forever; sweep them before any session can write.
  for (const std::string& path :
       util::remove_stale_tmp_files(config_.service.drain_dir)) {
    util::log_warn("removed stale checkpoint temp file ", path);
  }
  server_.set_frame_handler([this](std::uint64_t conn, std::string frame) {
    service_.handle_frame(conn, std::move(frame));
  });
  server_.set_close_handler(
      [this](std::uint64_t conn) { service_.handle_close(conn); });
  server_.set_abuse_handler(
      [this](std::uint64_t conn, const std::string& what) {
        service_.handle_abuse(conn, what);
      });

  for (const net::Endpoint& ep : config_.endpoints) {
    std::string error;
    net::Fd fd = net::listen_endpoint(ep, config_.server.listen_backlog,
                                      &error);
    if (!fd.valid()) {
      throw std::runtime_error("cannot listen on " + ep.to_string() + ": " +
                               error);
    }
    if (ep.kind == net::Endpoint::Kind::kTcp && tcp_port_ == 0) {
      tcp_port_ = net::local_tcp_port(fd.get());
    }
    if (ep.kind == net::Endpoint::Kind::kUnix) {
      unix_paths_.push_back(ep.path);
    }
    server_.add_listener(std::move(fd));
  }

  if (config_.watch_stop_signal) {
    util::StopSignal& stop = util::StopSignal::instance();
    stop.install();
    stop_fd_ = stop.fd();
    loop_.add(stop_fd_, POLLIN, [this](short) {
      util::StopSignal::instance().drain_pipe();
      service_.begin_drain();
    });
  }
}

Daemon::~Daemon() {
  join();
  if (stop_fd_ >= 0) loop_.remove(stop_fd_);
  for (const std::string& path : unix_paths_) ::unlink(path.c_str());
}

void Daemon::run() { loop_.run(); }

void Daemon::start_thread() {
  thread_ = std::thread([this] { run(); });
}

void Daemon::begin_drain() {
  loop_.post([this] { service_.begin_drain(); });
}

void Daemon::join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace kgdp::service
