// kgdd wire protocol (schema_version = io::kSchemaVersion; v2 added the
// solver counter surfaces to `stats` bodies and verdict objects).
//
// Transport: newline-delimited JSON frames (see docs/service.md for the
// full schema reference). A request is one object:
//
//   {"method": "verify", "params": {...}, "tag": "optional-client-tag"}
//
// Every reply frame carries {"schema_version", "req"} where `req` is the
// server-assigned request id ("r<N>", monotone per daemon), plus the
// client's `tag` verbatim when one was given, and a "type":
//
//   "result"    terminal success frame (exactly one per request)
//   "error"     terminal failure frame {"code", "message"}
//   "accepted"  a streaming verify was admitted {"session": "s<N>"}
//   "progress"  streaming progress {"session", "items_done", "items_total"}
//
// Error codes are a closed enum (ErrorCode) so clients can switch on
// them; the human-readable message is advisory only.
#pragma once

#include <string>

#include "io/json.hpp"

namespace kgdp::service {

enum class ErrorCode {
  kBadFrame,       // not a JSON object / unparsable
  kBadRequest,     // missing or ill-typed method/params
  kUnknownMethod,
  kUnsupported,    // (n, k) outside the paper's construction coverage
  kNotFound,       // unknown session / campaign dir
  kOverloaded,     // admission queue or session registry full
  kShuttingDown,   // daemon is draining
  kFrameTooLarge,
  kInternal,
};

const char* error_code_name(ErrorCode code);

// Frame builders. `tag` is propagated when non-empty.
io::Json make_result(const std::string& req_id, const std::string& tag,
                     io::JsonObject body);
io::Json make_error(const std::string& req_id, const std::string& tag,
                    ErrorCode code, const std::string& message);
io::Json make_event(const std::string& req_id, const std::string& tag,
                    const std::string& type, io::JsonObject body);

// True for the frame types that end a request's reply stream.
bool is_terminal_frame(const io::Json& frame);

}  // namespace kgdp::service
