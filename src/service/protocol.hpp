// kgdd wire protocol (schema_version = io::kSchemaVersion; v2 added the
// solver counter surfaces to `stats` bodies and verdict objects; v3
// added the `route` method, the request-side `schema_version` field,
// and serves every reply through the unified Envelope below; v4 added
// the fleet `lease`/`lease.release` methods and the `stats` fleet
// block; v5 added `fleet.join`/`fleet.leave` (elastic membership), the
// durable-coordinator grant params `generation`/`refenced`, and their
// `stats` fleet counters — servers still accept v1..v4 requests on the
// wire).
//
// Transport: newline-delimited JSON frames (see docs/service.md for the
// full schema reference). A request is one object:
//
//   {"method": "verify", "params": {...}, "tag": "optional-client-tag",
//    "schema_version": 3}
//
// `schema_version` declares the client's dialect; it is optional
// (defaults to the server's version) and must be in [1, server version]
// — anything newer is rejected with `bad_request` rather than answered
// in a shape the client cannot have meant.
//
// Every reply frame carries {"schema_version", "req"} where `req` is the
// server-assigned request id ("r<N>", monotone per daemon), plus the
// client's `tag` verbatim when one was given, and a "type":
//
//   "result"    terminal success frame (exactly one per request)
//   "error"     terminal failure frame {"code", "message"}
//   "accepted"  a streaming verify was admitted {"session": "s<N>"}
//   "progress"  streaming progress {"session", "items_done", "items_total"}
//
// Error codes are a closed enum (ErrorCode) so clients can switch on
// them; the human-readable message is advisory only.
#pragma once

#include <string>

#include "io/json.hpp"

namespace kgdp::service {

enum class ErrorCode {
  kBadFrame,       // not a JSON object / unparsable
  kBadRequest,     // missing or ill-typed method/params/schema_version
  kUnknownMethod,
  kUnsupported,    // (n, k) outside the paper's construction coverage
  kNotFound,       // unknown session / campaign dir
  kOverloaded,     // admission queue or session registry full
  kShuttingDown,   // daemon is draining
  kFrameTooLarge,
  kInternal,
};

const char* error_code_name(ErrorCode code);

// One parsed, validated request plus everything needed to stamp its
// replies. Every kgdd method builds its frames through this one type,
// so request-id/tag propagation and version stamping cannot drift
// between methods. Copyable: streaming sessions keep their envelope for
// the lifetime of the reply stream.
struct Envelope {
  std::string req_id;  // server-assigned ("r<N>")
  std::string tag;     // client tag, propagated verbatim when non-empty
  std::string method;
  // The client's declared dialect (validated to [1, io::kSchemaVersion]
  // by parse_envelope; defaults to the server's version when absent).
  int schema_version = io::kSchemaVersion;
  // The full parsed request frame; params() points into it.
  io::Json request;

  const io::Json* params() const { return request.find("params"); }

  // Reply builders, all stamped {schema_version, req, type [, tag]}.
  io::Json result(io::JsonObject body) const;
  io::Json error(ErrorCode code, const std::string& message) const;
  io::Json event(const std::string& type, io::JsonObject body) const;
};

// Parses one wire frame into *env (whose req_id the caller has already
// assigned). On failure fills *reply with the terminal error frame —
// built from whatever method/tag were recovered before the reject — and
// returns false.
bool parse_envelope(const std::string& frame, Envelope* env,
                    io::Json* reply);

// Low-level frame builders underlying Envelope's; `tag` is propagated
// when non-empty. Exposed for replies that have no envelope (abuse
// notices) and for tests that forge frames.
io::Json make_result(const std::string& req_id, const std::string& tag,
                     io::JsonObject body);
io::Json make_error(const std::string& req_id, const std::string& tag,
                    ErrorCode code, const std::string& message);
io::Json make_event(const std::string& req_id, const std::string& tag,
                    const std::string& type, io::JsonObject body);

// True for the frame types that end a request's reply stream.
bool is_terminal_frame(const io::Json& frame);

}  // namespace kgdp::service
