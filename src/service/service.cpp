#include "service/service.hpp"

#include <dirent.h>

#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string_view>

#include "campaign/checkpoint.hpp"
#include "campaign/telemetry.hpp"
#include "fault/canonical.hpp"
#include "kgd/factory.hpp"
#include "service/checkpoint.hpp"
#include "sim/campaign.hpp"
#include "util/durable_file.hpp"
#include "util/log.hpp"
#include "verify/batch_kernels.hpp"

namespace kgdp::service {

namespace {

// --- param extraction helpers -------------------------------------------
// Each returns false and fills *error on a missing/ill-typed field.

bool param_int(const io::Json* params, const char* name, bool required,
               std::int64_t def, std::int64_t min, std::int64_t max,
               std::int64_t* out, std::string* error) {
  const io::Json* v = params != nullptr ? params->find(name) : nullptr;
  if (v == nullptr) {
    if (required) {
      *error = std::string("missing required param '") + name + "'";
      return false;
    }
    *out = def;
    return true;
  }
  if (!v->is_int() || v->as_int() < min || v->as_int() > max) {
    *error = std::string("param '") + name + "' must be an integer in [" +
             std::to_string(min) + ", " + std::to_string(max) + "]";
    return false;
  }
  *out = v->as_int();
  return true;
}

bool param_double(const io::Json* params, const char* name, double def,
                  double min, double max, double* out, std::string* error) {
  const io::Json* v = params != nullptr ? params->find(name) : nullptr;
  if (v == nullptr) {
    *out = def;
    return true;
  }
  if (!v->is_number()) {
    *error = std::string("param '") + name + "' must be a number";
    return false;
  }
  const double value = v->as_double();
  if (!(value >= min && value <= max)) {  // negated: NaN fails the range
    *error = std::string("param '") + name + "' must be a number in [" +
             std::to_string(min) + ", " + std::to_string(max) + "]";
    return false;
  }
  *out = value;
  return true;
}

bool param_string(const io::Json* params, const char* name,
                  const std::string& def, std::string* out,
                  std::string* error) {
  const io::Json* v = params != nullptr ? params->find(name) : nullptr;
  if (v == nullptr) {
    *out = def;
    return true;
  }
  if (!v->is_string()) {
    *error = std::string("param '") + name + "' must be a string";
    return false;
  }
  *out = v->as_string();
  return true;
}

// Parses one fault-set JSON array into node ids (range-checked against
// `num_nodes` later, once the graph is known).
bool parse_fault_list(const io::Json& arr, const char* what,
                      std::vector<graph::Node>* out, std::string* error) {
  if (!arr.is_array()) {
    *error = std::string(what) + " must be an array of node ids";
    return false;
  }
  out->clear();
  out->reserve(arr.as_array().size());
  for (const io::Json& v : arr.as_array()) {
    if (!v.is_int() || v.as_int() < 0) {
      *error = std::string(what) + " must contain non-negative integers";
      return false;
    }
    out->push_back(static_cast<graph::Node>(v.as_int()));
  }
  return true;
}

// Largest batch one `route` request may carry; bounds the work a single
// frame can pin on a pool worker.
constexpr std::size_t kMaxRouteBatch = 4096;

// Highest <N> among kgdd-s<N>.kgdp* files (checkpoints, .bak, .corrupt,
// .tmp residue) in `dir`; 0 when none. Session ids seed past this so a
// restarted daemon never mints an id whose checkpoint files a crashed
// predecessor left behind — reusing s1 would overwrite, and on
// completion delete, the dead daemon's only resume data.
std::uint64_t max_checkpoint_session_ordinal(const std::string& dir) {
  std::uint64_t max_ordinal = 0;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return max_ordinal;
  constexpr std::string_view kPrefix = "kgdd-s";
  while (dirent* entry = ::readdir(d)) {
    const std::string_view name = entry->d_name;
    if (name.substr(0, kPrefix.size()) != kPrefix) continue;
    std::size_t i = kPrefix.size();
    std::uint64_t ordinal = 0;
    bool any_digit = false;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
      ordinal = ordinal * 10 + static_cast<std::uint64_t>(name[i] - '0');
      any_digit = true;
      ++i;
    }
    if (!any_digit || name.substr(i, 5) != ".kgdp") continue;
    if (ordinal > max_ordinal) max_ordinal = ordinal;
  }
  ::closedir(d);
  return max_ordinal;
}

const char* instance_status_name(campaign::InstanceStatus s) {
  switch (s) {
    case campaign::InstanceStatus::kPending: return "pending";
    case campaign::InstanceStatus::kRunning: return "running";
    case campaign::InstanceStatus::kDone: return "done";
  }
  return "pending";
}

}  // namespace

Service::Service(net::EventLoop& loop, net::FrameServer& server,
                 ServiceConfig config)
    : loop_(loop),
      server_(server),
      config_(std::move(config)),
      pool_(config_.threads),
      next_session_(max_checkpoint_session_ordinal(config_.drain_dir) + 1) {
  if (config_.cache_entries > 0) {
    verdict_cache_ = std::make_unique<verify::VerdictCache>(
        static_cast<std::size_t>(config_.cache_entries));
  }
  if (config_.atlas_entries > 0) {
    route_atlas_ = std::make_unique<reconfig::RouteAtlas>(
        static_cast<std::size_t>(config_.atlas_entries));
    for (const std::string& path : config_.atlas_paths) {
      std::ifstream in(path);
      if (!in) {
        throw std::runtime_error("cannot open atlas artifact: " + path);
      }
      try {
        const reconfig::RouteAtlasFileInfo info = route_atlas_->load(in);
        util::log_info("atlas: preloaded ", info.entries, " routes for n=",
                       info.n, " k=", info.k, " from ", path);
      } catch (const std::exception& e) {
        throw std::runtime_error("atlas artifact " + path + ": " + e.what());
      }
    }
  } else if (!config_.atlas_paths.empty()) {
    throw std::runtime_error(
        "atlas artifacts given but the atlas is disabled (atlas_entries=0)");
  }
}

Service::~Service() = default;

std::string Service::next_req_id() {
  std::string id = "r";
  id += std::to_string(next_req_++);
  return id;
}

void Service::send(std::uint64_t conn, const io::Json& frame) {
  server_.send(conn, frame.dump());
}

void Service::reply_terminal(std::uint64_t conn, const std::string& method,
                             const io::Json& frame, Outcome outcome,
                             double seconds) {
  metrics_.record(method, outcome, seconds);
  send(conn, frame);
}

bool Service::admit_job() const {
  return pool_.in_flight() <
         static_cast<std::size_t>(pool_.thread_count()) + config_.max_queue;
}

// ---------------------------------------------------------------------------
// Frame entry
// ---------------------------------------------------------------------------

void Service::handle_frame(std::uint64_t conn, std::string frame) {
  util::Timer timer;
  Envelope env;
  env.req_id = next_req_id();

  io::Json reject;
  if (!parse_envelope(frame, &env, &reject)) {
    reply_terminal(conn, env.method.empty() ? "_frame" : env.method, reject,
                   Outcome::kError, timer.seconds());
    return;
  }

  // Control-plane methods stay available while draining.
  if (env.method == "ping") {
    io::JsonObject body;
    body["pong"] = true;
    reply_terminal(conn, env.method, env.result(std::move(body)),
                   Outcome::kOk, timer.seconds());
    return;
  }
  if (env.method == "stats") {
    handle_stats(conn, env);
    return;
  }
  if (env.method == "cancel") {
    handle_cancel(conn, env);
    return;
  }
  if (env.method == "shutdown") {
    io::JsonObject body;
    body["draining"] = true;
    reply_terminal(conn, env.method, env.result(std::move(body)),
                   Outcome::kOk, timer.seconds());
    // Posted so the reply is queued before connections start closing.
    loop_.post([this] { begin_drain(); });
    return;
  }

  if (draining_) {
    reply_terminal(conn, env.method,
                   env.error(ErrorCode::kShuttingDown, "daemon is draining"),
                   Outcome::kError, timer.seconds());
    return;
  }

  if (env.method == "verify") {
    handle_verify(conn, env);
    return;
  }
  if (env.method == "route") {
    handle_route(conn, env);
    return;
  }
  if (env.method == "lease") {
    handle_lease(conn, env);
    return;
  }
  if (env.method == "lease.release") {
    handle_lease_release(conn, env);
    return;
  }
  // Elastic-membership announcements (schema v5). The coordinator sends
  // these over the worker connection: `fleet.join` when this daemon was
  // attached to a live campaign, `fleet.leave` when it was asked to
  // detach — the daemon then drains each lease session at its next
  // chunk boundary (cursor handed back exactly as for a daemon-wide
  // drain) while staying up for other clients.
  if (env.method == "fleet.join") {
    ++fleet_.workers_joined;
    io::JsonObject body;
    body["joined"] = true;
    reply_terminal(conn, env.method, env.result(std::move(body)),
                   Outcome::kOk, timer.seconds());
    return;
  }
  if (env.method == "fleet.leave") {
    ++fleet_.workers_left;
    std::uint64_t draining = 0;
    std::vector<std::string> idle;
    for (auto& [sid, s] : sessions_) {
      if (!s->is_lease || s->leave_drain) continue;
      s->leave_drain = true;
      ++draining;
      if (!s->running_chunk && !s->cancelled) idle.push_back(sid);
    }
    for (const std::string& sid : idle) {
      const auto it = sessions_.find(sid);
      if (it != sessions_.end()) finalize_drained(*it->second);
    }
    io::JsonObject body;
    body["leaving"] = true;
    body["draining"] = draining;
    reply_terminal(conn, env.method, env.result(std::move(body)),
                   Outcome::kOk, timer.seconds());
    return;
  }

  std::string param_error;
  if (env.method == "construct") {
    std::int64_t n = 0, k = 0;
    const io::Json* params = env.params();
    if (!param_int(params, "n", true, 0, 1, 1 << 20, &n, &param_error) ||
        !param_int(params, "k", true, 0, 1, 64, &k, &param_error)) {
      reply_terminal(conn, env.method,
                     env.error(ErrorCode::kBadRequest, param_error),
                     Outcome::kError, timer.seconds());
      return;
    }
    submit_job(conn, env, [n, k]() -> JobReply {
      JobReply r;
      auto built = kgd::build_solution(static_cast<int>(n),
                                       static_cast<int>(k));
      if (!built) {
        r.error_code = ErrorCode::kUnsupported;
        r.error_message = "no construction for n=" + std::to_string(n) +
                          " k=" + std::to_string(k);
        return r;
      }
      r.body["name"] = built->name();
      r.body["method"] = kgd::construction_method(static_cast<int>(n),
                                                  static_cast<int>(k));
      r.body["nodes"] = built->num_nodes();
      r.body["inputs"] = built->num_inputs();
      r.body["outputs"] = built->num_outputs();
      r.body["processors"] = built->num_processors();
      r.body["edges"] = static_cast<std::uint64_t>(
          built->graph().num_edges());
      return r;
    });
    return;
  }

  if (env.method == "sim.run") {
    std::int64_t n = 0, k = 0, seed = 0;
    sim::CampaignConfig sim_config;
    double horizon_mcycles = 10.0;
    const io::Json* params = env.params();
    if (!param_int(params, "n", true, 0, 1, 1 << 20, &n, &param_error) ||
        !param_int(params, "k", true, 0, 1, 64, &k, &param_error) ||
        !param_int(params, "seed", false, 1, 0, INT64_MAX, &seed,
                   &param_error) ||
        // Bounded so a hostile request cannot pin a pool worker on an
        // effectively unbounded simulation (one-shot jobs have no
        // cancellation path).
        !param_double(params, "faults_per_mcycle",
                      sim_config.faults_per_mcycle, 0.0, 1e6,
                      &sim_config.faults_per_mcycle, &param_error) ||
        !param_double(params, "repair_cycles", sim_config.repair_cycles,
                      0.0, 1e12, &sim_config.repair_cycles, &param_error) ||
        !param_double(params, "horizon_mcycles", 10.0, 1e-6, 1e6,
                      &horizon_mcycles, &param_error)) {
      reply_terminal(conn, env.method,
                     env.error(ErrorCode::kBadRequest, param_error),
                     Outcome::kError, timer.seconds());
      return;
    }
    sim_config.horizon_cycles = horizon_mcycles * 1e6;
    sim_config.seed = static_cast<std::uint64_t>(seed);
    submit_job(conn, env, [n, k, sim_config]() -> JobReply {
      JobReply r;
      auto built = kgd::build_solution(static_cast<int>(n),
                                       static_cast<int>(k));
      if (!built) {
        r.error_code = ErrorCode::kUnsupported;
        r.error_message = "no construction for n=" + std::to_string(n) +
                          " k=" + std::to_string(k);
        return r;
      }
      const sim::CampaignResult res =
          sim::run_availability_campaign(*built, sim_config);
      r.body["availability"] = res.availability;
      r.body["mean_utilization"] = res.mean_utilization;
      r.body["faults_injected"] = res.faults_injected;
      r.body["repairs_completed"] = res.repairs_completed;
      r.body["reconfigurations"] = res.reconfigurations;
      r.body["outages"] = res.outages;
      r.body["worst_outage_cycles"] = res.worst_outage_cycles;
      return r;
    });
    return;
  }

  if (env.method == "campaign.status") {
    std::string dir;
    if (!param_string(env.params(), "dir", "", &dir, &param_error) ||
        dir.empty()) {
      reply_terminal(
          conn, env.method,
          env.error(ErrorCode::kBadRequest,
                    param_error.empty() ? "missing required param 'dir'"
                                        : param_error),
          Outcome::kError, timer.seconds());
      return;
    }
    submit_job(conn, env, [dir]() -> JobReply {
      JobReply r;
      campaign::CampaignState state;
      try {
        state = campaign::load_campaign_file(dir + "/checkpoint.kgdp");
      } catch (const util::CheckpointError& e) {
        // Classified: a missing checkpoint is the client's not-found; a
        // truncated/corrupt/unparsable one is server-side damage.
        r.error_code = e.kind() == util::CheckpointErrorKind::kMissing
                           ? ErrorCode::kNotFound
                           : ErrorCode::kInternal;
        r.error_message = e.what();
        return r;
      } catch (const std::exception& e) {
        r.error_code = ErrorCode::kNotFound;
        r.error_message = e.what();
        return r;
      }
      io::JsonArray instances;
      std::int64_t done = 0, failing = 0;
      for (const campaign::InstanceState& inst : state.instances) {
        io::JsonObject f;
        f["n"] = inst.n;
        f["k"] = inst.k;
        f["status"] = instance_status_name(inst.status);
        if (inst.status == campaign::InstanceStatus::kDone) {
          ++done;
          if (!inst.result.holds) ++failing;
          f["result"] = campaign::check_result_to_json(inst.result);
        }
        instances.push_back(io::Json(std::move(f)));
      }
      r.body["n_min"] = state.config.n_min;
      r.body["n_max"] = state.config.n_max;
      r.body["k_min"] = state.config.k_min;
      r.body["k_max"] = state.config.k_max;
      r.body["shard_index"] =
          static_cast<std::int64_t>(state.config.shard_index);
      r.body["shard_count"] =
          static_cast<std::int64_t>(state.config.shard_count);
      r.body["instances"] = std::move(instances);
      r.body["done"] = done;
      r.body["failing"] = failing;
      return r;
    });
    return;
  }

  reply_terminal(conn, env.method,
                 env.error(ErrorCode::kUnknownMethod,
                           "unknown method '" + env.method + "'"),
                 Outcome::kError, timer.seconds());
}

// ---------------------------------------------------------------------------
// One-shot jobs
// ---------------------------------------------------------------------------

void Service::submit_job(std::uint64_t conn, const Envelope& env,
                         std::function<JobReply()> work) {
  util::Timer timer;
  if (!admit_job()) {
    reply_terminal(conn, env.method,
                   env.error(ErrorCode::kOverloaded, "admission queue full"),
                   Outcome::kOverloaded, timer.seconds());
    return;
  }
  ++outstanding_jobs_;
  pool_.submit([this, conn, env, timer, work = std::move(work)] {
    JobReply reply;
    try {
      reply = work();
    } catch (const std::exception& e) {
      reply.error_code = ErrorCode::kInternal;
      reply.error_message = e.what();
    } catch (...) {
      reply.error_code = ErrorCode::kInternal;
      reply.error_message = "unknown error";
    }
    loop_.post([this, conn, env, timer, reply = std::move(reply)] {
      if (reply.error_message.empty()) {
        reply_terminal(conn, env.method, env.result(reply.body),
                       Outcome::kOk, timer.seconds());
      } else {
        reply_terminal(conn, env.method,
                       env.error(reply.error_code, reply.error_message),
                       Outcome::kError, timer.seconds());
      }
      --outstanding_jobs_;
      maybe_finish_drain();
    });
  });
}

// ---------------------------------------------------------------------------
// Control-plane handlers
// ---------------------------------------------------------------------------

void Service::handle_stats(std::uint64_t conn, const Envelope& env) {
  util::Timer timer;
  io::JsonObject body;
  body["metrics"] = metrics_.snapshot();
  body["sessions_active"] = static_cast<std::uint64_t>(sessions_.size());
  body["connections"] =
      static_cast<std::uint64_t>(server_.connection_count());
  io::JsonObject pool;
  pool["threads"] = static_cast<std::int64_t>(pool_.thread_count());
  pool["queue_depth"] = static_cast<std::uint64_t>(pool_.queue_depth());
  pool["in_flight"] = static_cast<std::uint64_t>(pool_.in_flight());
  body["pool"] = io::Json(std::move(pool));
  // Solver engine totals across all retired verify sessions (live
  // sessions are excluded: their counters move off the loop thread).
  io::JsonObject solver;
  solver["solves"] = solver_retired_.solves;
  solver["patches"] = solver_retired_.patches;
  solver["rebuilds"] = solver_retired_.rebuilds;
  solver["search_nodes"] = solver_retired_.search_nodes;
  solver["walk_hits"] = solver_retired_.walk_hits;
  solver["walk_fallbacks"] = solver_retired_.walk_fallbacks;
  // Active batch setup kernel under the daemon's default dispatch —
  // records what a verify session actually runs (name, lane width, ISA),
  // including silent fallbacks from widths this build can't execute.
  const verify::detail::BatchKernel kern = verify::detail::select_batch_kernel(0);
  io::JsonObject kernel;
  kernel["name"] = std::string(kern.name);
  kernel["width"] = static_cast<std::int64_t>(kern.width);
  kernel["isa"] = std::string(verify::detail::isa_name(kern.isa));
  solver["kernel"] = io::Json(std::move(kernel));
  body["solver"] = io::Json(std::move(solver));
  // Shared verdict-cache totals (global across sessions, live included:
  // the cache's own counters are atomic). All zero when no cache.
  io::JsonObject cache;
  cache["enabled"] = verdict_cache_ != nullptr;
  cache["capacity"] = static_cast<std::uint64_t>(
      verdict_cache_ ? verdict_cache_->capacity() : 0);
  const verify::VerdictCacheStats cs =
      verdict_cache_ ? verdict_cache_->stats() : verify::VerdictCacheStats{};
  cache["hits"] = cs.hits;
  cache["misses"] = cs.misses;
  cache["inserts"] = cs.inserts;
  cache["evictions"] = cs.evictions;
  body["cache"] = io::Json(std::move(cache));
  // Route-atlas totals (atomic counters; live route jobs included).
  io::JsonObject atlas;
  atlas["enabled"] = route_atlas_ != nullptr;
  atlas["capacity"] = static_cast<std::uint64_t>(
      route_atlas_ ? route_atlas_->max_entries() : 0);
  const reconfig::RouteAtlasStats as =
      route_atlas_ ? route_atlas_->stats() : reconfig::RouteAtlasStats{};
  atlas["entries"] = as.entries;
  atlas["hits"] = as.hits;
  atlas["misses"] = as.misses;
  atlas["inserts"] = as.inserts;
  atlas["rejected_full"] = as.rejected_full;
  {
    std::lock_guard<std::mutex> lock(routers_mu_);
    atlas["routers"] = static_cast<std::uint64_t>(routers_.size());
  }
  body["atlas"] = io::Json(std::move(atlas));
  // Fleet worker counters plus the live lease table (items/heartbeat are
  // loop-thread snapshots taken at each progress frame, so reading them
  // here never races a running chunk).
  io::JsonObject fleet;
  fleet["leases_granted"] = fleet_.granted;
  fleet["leases_completed"] = fleet_.completed;
  fleet["leases_resumed"] = fleet_.resumed;
  fleet["leases_truncated"] = fleet_.truncated;
  fleet["leases_released"] = fleet_.released;
  fleet["stale_rejected"] = fleet_.stale_rejected;
  fleet["coordinator_resumes"] = fleet_.coordinator_resumes;
  fleet["leases_refenced"] = fleet_.leases_refenced;
  fleet["workers_joined"] = fleet_.workers_joined;
  fleet["workers_left"] = fleet_.workers_left;
  io::JsonArray active_leases;
  for (const auto& [sid, s] : sessions_) {
    if (!s->is_lease) continue;
    io::JsonObject l;
    l["lease"] = s->lease_id;
    l["session"] = sid;
    l["epoch"] = s->lease_epoch;
    l["items_done"] = s->last_items_done;
    l["items_total"] = s->last_items_total;
    l["heartbeat_age_s"] = s->last_progress.seconds();
    active_leases.push_back(io::Json(std::move(l)));
  }
  fleet["active"] = io::Json(std::move(active_leases));
  body["fleet"] = io::Json(std::move(fleet));
  body["draining"] = draining_;
  if (!config_.metrics_path.empty()) {
    std::ofstream out(config_.metrics_path, std::ios::app);
    if (out) metrics_.dump_jsonl(out);
  }
  reply_terminal(conn, "stats", env.result(std::move(body)), Outcome::kOk,
                 timer.seconds());
}

void Service::handle_cancel(std::uint64_t conn, const Envelope& env) {
  util::Timer timer;
  std::string sid, param_error;
  if (!param_string(env.params(), "session", "", &sid, &param_error) ||
      sid.empty()) {
    reply_terminal(
        conn, "cancel",
        env.error(ErrorCode::kBadRequest,
                  param_error.empty() ? "missing required param 'session'"
                                      : param_error),
        Outcome::kError, timer.seconds());
    return;
  }
  const auto it = sessions_.find(sid);
  io::JsonObject body;
  body["session"] = sid;
  body["found"] = it != sessions_.end();
  if (it != sessions_.end()) {
    Session& s = *it->second;
    s.cancelled = true;
    if (!s.running_chunk) finalize_cancelled(s);
  }
  reply_terminal(conn, "cancel", env.result(std::move(body)), Outcome::kOk,
                 timer.seconds());
}

// ---------------------------------------------------------------------------
// Routing (atlas-served)
// ---------------------------------------------------------------------------

std::shared_ptr<Service::RouterEntry> Service::router_for(int n, int k,
                                                          std::string* error,
                                                          ErrorCode* code) {
  // Serializes first-use construction of a given (n, k) router (graph +
  // automorphism group, milliseconds); steady-state this is one map
  // lookup under an uncontended lock. Pool-worker callable.
  std::lock_guard<std::mutex> lock(routers_mu_);
  const auto it = routers_.find({n, k});
  if (it != routers_.end()) return it->second;
  auto built = kgd::build_solution(n, k);
  if (!built) {
    *code = ErrorCode::kUnsupported;
    *error = "no construction for n=" + std::to_string(n) +
             " k=" + std::to_string(k);
    return nullptr;
  }
  auto entry = std::make_shared<RouterEntry>(std::move(*built),
                                             route_atlas_.get());
  routers_.emplace(std::make_pair(n, k), entry);
  return entry;
}

void Service::handle_route(std::uint64_t conn, const Envelope& env) {
  util::Timer timer;
  std::string param_error;
  std::int64_t n = 0, k = 0;
  const io::Json* params = env.params();
  if (!param_int(params, "n", true, 0, 1, 1 << 20, &n, &param_error) ||
      !param_int(params, "k", true, 0, 1, 64, &k, &param_error)) {
    reply_terminal(conn, env.method,
                   env.error(ErrorCode::kBadRequest, param_error),
                   Outcome::kError, timer.seconds());
    return;
  }
  const io::Json* faults = params != nullptr ? params->find("faults") : nullptr;
  const io::Json* sets = params != nullptr ? params->find("sets") : nullptr;
  if ((faults != nullptr) == (sets != nullptr)) {
    reply_terminal(conn, env.method,
                   env.error(ErrorCode::kBadRequest,
                             "exactly one of 'faults' (one fault set) or "
                             "'sets' (a batch of fault sets) is required"),
                   Outcome::kError, timer.seconds());
    return;
  }
  const bool single = faults != nullptr;
  std::vector<std::vector<graph::Node>> batch;
  if (single) {
    batch.emplace_back();
    if (!parse_fault_list(*faults, "param 'faults'", &batch.back(),
                          &param_error)) {
      reply_terminal(conn, env.method,
                     env.error(ErrorCode::kBadRequest, param_error),
                     Outcome::kError, timer.seconds());
      return;
    }
  } else {
    if (!sets->is_array()) {
      reply_terminal(conn, env.method,
                     env.error(ErrorCode::kBadRequest,
                               "param 'sets' must be an array of fault-set "
                               "arrays"),
                     Outcome::kError, timer.seconds());
      return;
    }
    if (sets->as_array().size() > kMaxRouteBatch) {
      reply_terminal(
          conn, env.method,
          env.error(ErrorCode::kBadRequest,
                    "batch of " + std::to_string(sets->as_array().size()) +
                        " fault sets exceeds the per-request limit of " +
                        std::to_string(kMaxRouteBatch)),
          Outcome::kError, timer.seconds());
      return;
    }
    batch.reserve(sets->as_array().size());
    for (std::size_t i = 0; i < sets->as_array().size(); ++i) {
      batch.emplace_back();
      if (!parse_fault_list(sets->as_array()[i],
                            ("param 'sets[" + std::to_string(i) + "]'")
                                .c_str(),
                            &batch.back(), &param_error)) {
        reply_terminal(conn, env.method,
                       env.error(ErrorCode::kBadRequest, param_error),
                       Outcome::kError, timer.seconds());
        return;
      }
    }
  }

  submit_job(conn, env,
             [this, n, k, single, batch = std::move(batch)]() -> JobReply {
    JobReply r;
    const std::shared_ptr<RouterEntry> entry = router_for(
        static_cast<int>(n), static_cast<int>(k), &r.error_message,
        &r.error_code);
    if (entry == nullptr) return r;
    const int nn = entry->sg.num_nodes();
    // One canonicalizer scratch per pool worker (~160 KiB): route jobs
    // on the same worker reuse it allocation-free.
    static thread_local std::unique_ptr<fault::FaultCanonicalizer::Scratch>
        scratch;
    if (scratch == nullptr) {
      scratch = std::make_unique<fault::FaultCanonicalizer::Scratch>();
    }
    io::JsonArray routes;
    routes.reserve(batch.size());
    for (const std::vector<graph::Node>& nodes : batch) {
      for (const graph::Node v : nodes) {
        if (v >= nn) {
          r.error_code = ErrorCode::kBadRequest;
          r.error_message =
              "fault id " + std::to_string(v) + " out of range: the n=" +
              std::to_string(n) + " k=" + std::to_string(k) + " graph has " +
              std::to_string(nn) + " nodes";
          return r;
        }
      }
      const reconfig::Router::Result res = entry->router.route(
          kgd::FaultSet(nn, nodes), *scratch);
      if (!res.feasible) {
        routes.push_back(io::Json(nullptr));
        continue;
      }
      io::JsonArray path;
      path.reserve(res.pipeline.path.size());
      for (const graph::Node v : res.pipeline.path) path.push_back(v);
      routes.push_back(io::Json(std::move(path)));
    }
    // Reply bodies carry the route alone — never hit/warm provenance —
    // so atlas-on and atlas-off replies are bit-identical.
    if (single) {
      r.body["route"] = std::move(routes.front());
    } else {
      r.body["routes"] = io::Json(std::move(routes));
    }
    return r;
  });
}

// ---------------------------------------------------------------------------
// Streaming verify sessions
// ---------------------------------------------------------------------------

void Service::handle_verify(std::uint64_t conn, const Envelope& env) {
  util::Timer timer;
  std::string param_error;
  const io::Json* params = env.params();

  std::string resume_path;
  if (!param_string(params, "resume", "", &resume_path, &param_error)) {
    reply_terminal(conn, "verify",
                   env.error(ErrorCode::kBadRequest, param_error),
                   Outcome::kError, timer.seconds());
    return;
  }

  auto s = std::make_unique<Session>();
  s->conn = conn;
  s->env = env;
  s->resume_path = resume_path;
  s->chunk = config_.default_chunk;

  if (resume_path.empty()) {
    std::int64_t n = 0, k = 0, max_faults = 0, samples = 0, seed = 0,
                 chunk = 0;
    std::string mode, prune;
    if (!param_int(params, "n", true, 0, 1, 1 << 20, &n, &param_error) ||
        !param_int(params, "k", true, 0, 1, 64, &k, &param_error) ||
        !param_int(params, "max_faults", false, k, 0, 64, &max_faults,
                   &param_error) ||
        !param_int(params, "samples", false, 1000, 0, INT64_MAX, &samples,
                   &param_error) ||
        !param_int(params, "seed", false, 1, 0, INT64_MAX, &seed,
                   &param_error) ||
        !param_int(params, "chunk", false,
                   static_cast<std::int64_t>(config_.default_chunk), 1,
                   INT64_MAX, &chunk, &param_error) ||
        !param_string(params, "mode", "exhaustive", &mode, &param_error) ||
        !param_string(params, "prune", "auto", &prune, &param_error)) {
      reply_terminal(conn, "verify",
                     env.error(ErrorCode::kBadRequest, param_error),
                     Outcome::kError, timer.seconds());
      return;
    }
    if (mode != "exhaustive" && mode != "sampled") {
      reply_terminal(conn, "verify",
                     env.error(ErrorCode::kBadRequest,
                               "param 'mode' must be exhaustive|sampled"),
                     Outcome::kError, timer.seconds());
      return;
    }
    if (prune != "auto" && prune != "off") {
      reply_terminal(conn, "verify",
                     env.error(ErrorCode::kBadRequest,
                               "param 'prune' must be auto|off"),
                     Outcome::kError, timer.seconds());
      return;
    }
    s->n = static_cast<int>(n);
    s->k = static_cast<int>(k);
    s->req.mode = mode == "exhaustive" ? verify::CheckMode::kExhaustive
                                       : verify::CheckMode::kSampled;
    s->req.max_faults = static_cast<int>(max_faults);
    s->req.samples = static_cast<std::uint64_t>(samples);
    s->req.seed = static_cast<std::uint64_t>(seed);
    s->req.options.prune = prune == "auto" ? verify::PruneMode::kAuto
                                           : verify::PruneMode::kOff;
    s->chunk = static_cast<std::uint64_t>(chunk);
  }

  if (sessions_.size() >= config_.max_sessions || !admit_job()) {
    reply_terminal(conn, "verify",
                   env.error(ErrorCode::kOverloaded,
                             sessions_.size() >= config_.max_sessions
                                 ? "session registry full"
                                 : "admission queue full"),
                   Outcome::kOverloaded, timer.seconds());
    return;
  }

  s->id = "s";
  s->id += std::to_string(next_session_++);
  const std::string sid = s->id;
  sessions_.emplace(sid, std::move(s));

  io::JsonObject body;
  body["session"] = sid;
  send(conn, env.event("accepted", std::move(body)));
  // Re-find: send() may have torn the connection down, and the session
  // must never be handed to the pool through a stale reference.
  const auto it = sessions_.find(sid);
  if (it != sessions_.end()) schedule_session_work(*it->second);
}

// ---------------------------------------------------------------------------
// Fleet lease sessions
// ---------------------------------------------------------------------------

void Service::handle_lease(std::uint64_t conn, const Envelope& env) {
  util::Timer timer;
  std::string param_error;
  const io::Json* params = env.params();
  std::int64_t n = 0, k = 0, max_faults = 0, begin = 0, end = 0, epoch = 0,
               chunk = 0, generation = 0;
  std::string prune, lease_id, cursor;
  if (!param_int(params, "n", true, 0, 1, 1 << 20, &n, &param_error) ||
      !param_int(params, "k", true, 0, 1, 64, &k, &param_error) ||
      !param_int(params, "max_faults", false, k, 0, 64, &max_faults,
                 &param_error) ||
      !param_int(params, "begin", true, 0, 0, INT64_MAX, &begin,
                 &param_error) ||
      !param_int(params, "end", true, 0, 0, INT64_MAX, &end, &param_error) ||
      !param_int(params, "epoch", true, 0, 1, INT64_MAX, &epoch,
                 &param_error) ||
      !param_int(params, "chunk", false,
                 static_cast<std::int64_t>(config_.default_chunk), 1,
                 INT64_MAX, &chunk, &param_error) ||
      !param_int(params, "generation", false, 0, 0, INT64_MAX, &generation,
                 &param_error) ||
      !param_string(params, "prune", "auto", &prune, &param_error) ||
      !param_string(params, "lease", "", &lease_id, &param_error) ||
      !param_string(params, "cursor", "", &cursor, &param_error)) {
    reply_terminal(conn, "lease",
                   env.error(ErrorCode::kBadRequest, param_error),
                   Outcome::kError, timer.seconds());
    return;
  }
  if (lease_id.empty() || end < begin || (prune != "auto" && prune != "off")) {
    reply_terminal(conn, "lease",
                   env.error(ErrorCode::kBadRequest,
                             lease_id.empty()
                                 ? "missing required param 'lease'"
                                 : end < begin
                                       ? "param 'end' must be >= 'begin'"
                                       : "param 'prune' must be auto|off"),
                   Outcome::kError, timer.seconds());
    return;
  }

  // Epoch fencing on re-grants: a grant for a lease id this daemon
  // already holds supersedes the old session only with a strictly newer
  // epoch — a replayed or reordered grant can never resurrect a range
  // the coordinator has since reassigned.
  const auto idx = lease_index_.find(lease_id);
  if (idx != lease_index_.end()) {
    const auto old_it = sessions_.find(idx->second);
    if (old_it != sessions_.end()) {
      Session& old = *old_it->second;
      if (static_cast<std::uint64_t>(epoch) <= old.lease_epoch) {
        ++fleet_.stale_rejected;
        reply_terminal(
            conn, "lease",
            env.error(ErrorCode::kBadRequest,
                      "stale lease epoch " + std::to_string(epoch) +
                          " (lease '" + lease_id + "' is at epoch " +
                          std::to_string(old.lease_epoch) + ")"),
            Outcome::kError, timer.seconds());
        return;
      }
      old.cancelled = true;
      if (!old.running_chunk) finalize_cancelled(old);
    }
  }

  if (sessions_.size() >= config_.max_sessions || !admit_job()) {
    reply_terminal(conn, "lease",
                   env.error(ErrorCode::kOverloaded,
                             sessions_.size() >= config_.max_sessions
                                 ? "session registry full"
                                 : "admission queue full"),
                   Outcome::kOverloaded, timer.seconds());
    return;
  }

  auto s = std::make_unique<Session>();
  s->conn = conn;
  s->env = env;
  s->n = static_cast<int>(n);
  s->k = static_cast<int>(k);
  // No verdict cache on lease sessions: a cache hit replaces a solve,
  // shifting fault_sets_solved, and the fleet's acceptance bar is a
  // merged result bit-identical to a cache-less single-node run.
  s->req = verify::CheckRequest::exhaustive_slots(
      static_cast<int>(max_faults), static_cast<std::uint64_t>(begin),
      static_cast<std::uint64_t>(end));
  s->req.options.prune = prune == "auto" ? verify::PruneMode::kAuto
                                         : verify::PruneMode::kOff;
  s->chunk = static_cast<std::uint64_t>(chunk);
  s->is_lease = true;
  s->lease_id = lease_id;
  s->lease_epoch = static_cast<std::uint64_t>(epoch);
  s->resume_cursor = cursor;
  s->last_items_total = static_cast<std::uint64_t>(end - begin);
  ++fleet_.granted;
  if (!cursor.empty()) ++fleet_.resumed;
  // Durable-coordinator markers (optional; absent pre-v5): a strictly
  // higher generation means a restarted coordinator resumed its lease
  // table from the crash checkpoint; refenced marks the one grant that
  // re-fences a recovered lease at its post-resume epoch.
  if (static_cast<std::uint64_t>(generation) > fleet_.last_generation_seen) {
    if (generation > 0) ++fleet_.coordinator_resumes;
    fleet_.last_generation_seen = static_cast<std::uint64_t>(generation);
  }
  const io::Json* refenced = params != nullptr ? params->find("refenced")
                                               : nullptr;
  if (refenced != nullptr && refenced->is_bool() && refenced->as_bool()) {
    ++fleet_.leases_refenced;
  }

  s->id = "s";
  s->id += std::to_string(next_session_++);
  const std::string sid = s->id;
  sessions_.emplace(sid, std::move(s));
  lease_index_[lease_id] = sid;

  io::JsonObject body;
  body["session"] = sid;
  body["lease"] = lease_id;
  body["epoch"] = epoch;
  send(conn, env.event("accepted", std::move(body)));
  const auto it = sessions_.find(sid);
  if (it != sessions_.end()) schedule_session_work(*it->second);
}

void Service::handle_lease_release(std::uint64_t conn, const Envelope& env) {
  util::Timer timer;
  std::string param_error;
  const io::Json* params = env.params();
  std::string lease_id;
  std::int64_t epoch = 0, truncate_to = -1;
  if (!param_string(params, "lease", "", &lease_id, &param_error) ||
      !param_int(params, "epoch", true, 0, 1, INT64_MAX, &epoch,
                 &param_error) ||
      !param_int(params, "truncate_to", false, -1, 0, INT64_MAX,
                 &truncate_to, &param_error) ||
      lease_id.empty()) {
    reply_terminal(conn, "lease.release",
                   env.error(ErrorCode::kBadRequest,
                             param_error.empty()
                                 ? "missing required param 'lease'"
                                 : param_error),
                   Outcome::kError, timer.seconds());
    return;
  }
  const auto idx = lease_index_.find(lease_id);
  const auto it =
      idx == lease_index_.end() ? sessions_.end() : sessions_.find(idx->second);
  if (it == sessions_.end()) {
    reply_terminal(conn, "lease.release",
                   env.error(ErrorCode::kNotFound,
                             "unknown lease '" + lease_id + "'"),
                   Outcome::kError, timer.seconds());
    return;
  }
  Session& s = *it->second;
  if (static_cast<std::uint64_t>(epoch) != s.lease_epoch || conn != s.conn) {
    ++fleet_.stale_rejected;
    reply_terminal(
        conn, "lease.release",
        env.error(ErrorCode::kBadRequest,
                  conn != s.conn
                      ? "lease '" + lease_id + "' is owned by another "
                        "connection"
                      : "stale lease epoch " + std::to_string(epoch) +
                            " (lease '" + lease_id + "' is at epoch " +
                            std::to_string(s.lease_epoch) + ")"),
        Outcome::kError, timer.seconds());
    return;
  }
  const bool has_truncate = truncate_to >= 0;
  if (s.running_chunk) {
    if (s.release_pending) {
      reply_terminal(conn, "lease.release",
                     env.error(ErrorCode::kBadRequest,
                               "a release is already pending for lease '" +
                                   lease_id + "'"),
                     Outcome::kError, timer.seconds());
      return;
    }
    // The chunk in flight owns the sweep; park the release and answer it
    // at the chunk boundary, where truncation is well-defined.
    s.release_pending = true;
    s.release_has_truncate = has_truncate;
    s.release_truncate_to = static_cast<std::uint64_t>(truncate_to);
    s.release_env = env;
    return;
  }
  apply_lease_release(s, env, has_truncate,
                      static_cast<std::uint64_t>(truncate_to));
  // A full release surrenders the lease: its verify stream ends as
  // cancelled (with the final cursor in the release reply above).
  if (s.cancelled && !s.running_chunk) finalize_cancelled(s);
}

void Service::apply_lease_release(Session& s, const Envelope& env,
                                  bool has_truncate,
                                  std::uint64_t truncate_to) {
  // Chunk boundary: the session's compute state is quiescent, so the
  // cursor and truncation below are exact.
  io::JsonObject body;
  body["lease"] = s.lease_id;
  body["epoch"] = s.lease_epoch;
  bool applied = false;
  if (s.session != nullptr) {
    if (has_truncate) {
      // The steal handshake: applied:true means the tail [truncate_to,
      // end) is surrendered and safe to re-grant; applied:false means
      // the sweep already passed the split point and the thief must
      // abort. Either way the reply carries the live range and cursor.
      applied = s.session->truncate(truncate_to);
      if (applied) ++fleet_.truncated;
    } else {
      // Full release: surrender the whole unswept remainder.
      applied = true;
      ++fleet_.released;
      s.cancelled = true;
    }
    body["begin"] = s.session->slot_begin();
    body["end"] = s.session->slot_end();
    body["items_done"] = s.session->items_done();
    std::ostringstream cursor;
    s.session->save(cursor);
    body["cursor"] = cursor.str();
  } else {
    // Creation failed before the sweep existed; nothing to truncate.
    body["items_done"] = std::uint64_t{0};
  }
  body["applied"] = applied;
  reply_terminal(s.conn, "lease.release", env.result(std::move(body)),
                 Outcome::kOk, 0.0);
}

void Service::schedule_session_work(Session& s) {
  s.running_chunk = true;
  const std::string sid = s.id;
  Session* sp = &s;  // stable: owned by sessions_ via unique_ptr
  pool_.submit([this, sid, sp] {
    std::string error;
    ErrorCode code = ErrorCode::kInternal;
    try {
      if (sp->session == nullptr) {
        // First task: build the graph and session (and restore the
        // cursor when resuming a drain checkpoint).
        if (!sp->resume_path.empty()) {
          // The resume path is the client's file, not the daemon's:
          // load it strictly read-only — no quarantine rename, no
          // probing of a sibling `.bak` (to use one, the client names
          // it). The daemon only mutates checkpoints it wrote itself.
          util::CheckpointLoadOptions read_only;
          read_only.try_backup = false;
          read_only.quarantine = false;
          const SessionCheckpoint cp =
              load_session_checkpoint_file(sp->resume_path, read_only);
          sp->n = cp.n;
          sp->k = cp.k;
          sp->req = cp.request();
          sp->chunk = cp.chunk == 0 ? sp->chunk : cp.chunk;
          auto built = kgd::build_solution(cp.n, cp.k);
          if (!built) {
            throw std::runtime_error("checkpoint names unsupported n=" +
                                     std::to_string(cp.n) +
                                     " k=" + std::to_string(cp.k));
          }
          sp->sg.emplace(std::move(*built));
          sp->req.options.cache = verdict_cache_.get();
          sp->session =
              std::make_unique<verify::CheckSession>(*sp->sg, sp->req);
          std::istringstream cursor(cp.cursor);
          sp->session->restore(cursor);
        } else {
          auto built = kgd::build_solution(sp->n, sp->k);
          if (!built) {
            code = ErrorCode::kUnsupported;
            throw std::runtime_error(
                "no construction for n=" + std::to_string(sp->n) +
                " k=" + std::to_string(sp->k));
          }
          sp->sg.emplace(std::move(*built));
          // Lease sessions never attach the shared verdict cache: see
          // handle_lease (bit-identical merge vs a cache-less run).
          if (!sp->is_lease) sp->req.options.cache = verdict_cache_.get();
          sp->session =
              std::make_unique<verify::CheckSession>(*sp->sg, sp->req);
          if (sp->is_lease && !sp->resume_cursor.empty()) {
            // Reassigned lease: pick up at the dead worker's last
            // streamed cursor (fingerprint binds the range's begin, so
            // the cursor survives any truncation of its end).
            std::istringstream cursor(sp->resume_cursor);
            sp->session->restore(cursor);
          }
        }
      } else {
        sp->session->advance(sp->chunk);
      }
      error.clear();
    } catch (const util::CheckpointError& e) {
      // Classified resume failure: a path that names nothing is the
      // client's not-found; a damaged checkpoint is a bad request.
      code = e.kind() == util::CheckpointErrorKind::kMissing
                 ? ErrorCode::kNotFound
                 : ErrorCode::kBadRequest;
      error = e.what();
    } catch (const std::exception& e) {
      if (code == ErrorCode::kInternal && sp->session == nullptr) {
        code = ErrorCode::kBadRequest;  // checkpoint load/restore failure
      }
      error = e.what();
    }
    loop_.post([this, sid, error, code] { chunk_done(sid, error, code); });
  });
}

void Service::chunk_done(const std::string& sid, const std::string& error,
                         ErrorCode code) {
  const auto it = sessions_.find(sid);
  if (it == sessions_.end()) return;  // defensive; should not happen
  Session& s = *it->second;
  s.running_chunk = false;

  if (!error.empty()) {
    // A parked release must not be left unanswered by the error path.
    if (s.release_pending) {
      s.release_pending = false;
      apply_lease_release(s, s.release_env, s.release_has_truncate,
                          s.release_truncate_to);
    }
    finalize_error(s, code, error);
    return;
  }
  if (s.release_pending) {
    // Chunk boundary: apply the parked release now. A truncation can
    // finish the slice (done() below); a full release cancels it.
    s.release_pending = false;
    apply_lease_release(s, s.release_env, s.release_has_truncate,
                        s.release_truncate_to);
  }
  if (s.cancelled) {
    finalize_cancelled(s);
    return;
  }
  if (s.session->done()) {
    finalize_done(s);
    return;
  }
  if (draining_ || s.leave_drain) {
    finalize_drained(s);
    return;
  }

  io::JsonObject body;
  body["session"] = s.id;
  body["items_done"] = s.session->items_done();
  body["items_total"] = s.session->items_total();
  if (s.is_lease) {
    // Lease progress frames carry the fencing pair and the live cursor:
    // the cursor on the coordinator's side IS the lease's recovery
    // point, so worker death costs at most one chunk of re-solving and
    // no disk write on either end.
    s.last_items_done = s.session->items_done();
    s.last_items_total = s.session->items_total();
    s.last_progress.reset();
    body["lease"] = s.lease_id;
    body["epoch"] = s.lease_epoch;
    std::ostringstream cursor;
    s.session->save(cursor);
    body["cursor"] = cursor.str();
  }
  if (!s.is_lease && config_.session_checkpoint_every > 0 &&
      ++s.chunks_since_checkpoint >= config_.session_checkpoint_every) {
    s.chunks_since_checkpoint = 0;
    std::string path, cp_error;
    if (write_session_checkpoint(s, &path, &cp_error)) {
      body["checkpoint"] = path;
    } else {
      // Periodic checkpoints are belt-and-braces; a failed write costs
      // crash protection, not the sweep.
      util::log_warn("session ", s.id,
                     ": periodic checkpoint failed: ", cp_error);
    }
  }
  send(s.conn, s.env.event("progress", std::move(body)));
  // Re-find before scheduling: the send can destroy the connection, and
  // nothing that runs under it may have erased the session.
  const auto again = sessions_.find(sid);
  if (again != sessions_.end()) schedule_session_work(*again->second);
}

std::string Service::session_checkpoint_path(const Session& s) const {
  return config_.drain_dir + "/kgdd-" + s.id + ".kgdp";
}

bool Service::write_session_checkpoint(Session& s, std::string* path,
                                       std::string* error) {
  try {
    SessionCheckpoint cp;
    cp.n = s.n;
    cp.k = s.k;
    cp.mode = s.req.mode;
    cp.max_faults = s.req.max_faults;
    cp.samples = s.req.samples;
    cp.seed = s.req.seed;
    cp.prune = s.req.options.prune;
    cp.chunk = s.chunk;
    std::ostringstream cursor;
    s.session->save(cursor);
    cp.cursor = cursor.str();
    *path = session_checkpoint_path(s);
    write_session_checkpoint_file(*path, cp);
    s.wrote_checkpoint = true;
    return true;
  } catch (const std::exception& e) {
    *error = e.what();
    return false;
  }
}

void Service::remove_session_checkpoints(const Session& s) {
  // Only files this daemon wrote for this session; a client-supplied
  // resume path is never the daemon's to delete.
  if (!s.wrote_checkpoint) return;
  const std::string path = session_checkpoint_path(s);
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
}

void Service::finalize_done(Session& s) {
  const std::string sid = s.id;  // reply_terminal's send may erase s
  remove_session_checkpoints(s);
  io::JsonObject body;
  body["session"] = s.id;
  body["status"] = "done";
  body["items_done"] = s.session->items_done();
  body["items_total"] = s.session->items_total();
  if (s.is_lease) {
    ++fleet_.completed;
    body["lease"] = s.lease_id;
    body["epoch"] = s.lease_epoch;
    body["begin"] = s.session->slot_begin();
    body["end"] = s.session->slot_end();
    // The shard verdict rides the campaign result line (bit-cast
    // doubles and all) so the coordinator's merge is exact — JSON
    // number round-tripping would cost the bit-identical guarantee.
    std::ostringstream result;
    campaign::save_result(result, s.session->result());
    body["result"] = result.str();
  } else {
    body["verdict"] = campaign::check_result_to_json(s.session->result());
  }
  reply_terminal(s.conn, s.is_lease ? "lease" : "verify",
                 s.env.result(std::move(body)), Outcome::kOk,
                 s.timer.seconds());
  destroy_session(sid);
}

void Service::finalize_cancelled(Session& s) {
  const std::string sid = s.id;  // reply_terminal's send may erase s
  // A cancelled sweep is abandoned, not suspended: reap its periodic
  // checkpoints so the drain dir holds only resumable state.
  remove_session_checkpoints(s);
  io::JsonObject body;
  body["session"] = s.id;
  body["status"] = "cancelled";
  if (s.session != nullptr) {
    body["items_done"] = s.session->items_done();
    body["items_total"] = s.session->items_total();
  }
  if (s.is_lease) {
    body["lease"] = s.lease_id;
    body["epoch"] = s.lease_epoch;
    if (s.session != nullptr) {
      // Final cursor so a surrendering worker's remainder is resumable.
      std::ostringstream cursor;
      s.session->save(cursor);
      body["cursor"] = cursor.str();
    }
  }
  reply_terminal(s.conn, s.is_lease ? "lease" : "verify",
                 s.env.result(std::move(body)), Outcome::kCancelled,
                 s.timer.seconds());
  destroy_session(sid);
}

void Service::finalize_drained(Session& s) {
  const std::string sid = s.id;  // reply_terminal's send may erase s
  io::JsonObject body;
  body["session"] = s.id;
  body["status"] = "drained";
  if (s.is_lease) {
    // Lease recovery is the coordinator's job, not the disk's: hand the
    // cursor back in the terminal frame and let the lease be re-granted
    // elsewhere, exactly as if this worker had died politely.
    body["lease"] = s.lease_id;
    body["epoch"] = s.lease_epoch;
    body["items_done"] = s.session->items_done();
    body["items_total"] = s.session->items_total();
    std::ostringstream cursor;
    s.session->save(cursor);
    body["cursor"] = cursor.str();
    reply_terminal(s.conn, "lease", s.env.result(std::move(body)),
                   Outcome::kDrained, s.timer.seconds());
    destroy_session(sid);
    return;
  }
  std::string path, cp_error;
  if (!write_session_checkpoint(s, &path, &cp_error)) {
    finalize_error(s, ErrorCode::kInternal,
                   "drain checkpoint failed: " + cp_error);
    return;
  }
  body["checkpoint"] = path;
  body["items_done"] = s.session->items_done();
  body["items_total"] = s.session->items_total();
  reply_terminal(s.conn, "verify", s.env.result(std::move(body)),
                 Outcome::kDrained, s.timer.seconds());
  destroy_session(sid);
}

void Service::finalize_error(Session& s, ErrorCode code,
                             const std::string& what) {
  const std::string sid = s.id;  // reply_terminal's send may erase s
  // Deliberately kept (unlike done/cancel): the last periodic
  // checkpoint is an errored session's only post-mortem resume point,
  // and session-id seeding stops a later boot from overwriting it.
  if (s.wrote_checkpoint) {
    util::log_warn("session ", s.id, ": failed; last checkpoint kept at ",
                   session_checkpoint_path(s));
  }
  reply_terminal(s.conn, s.is_lease ? "lease" : "verify",
                 s.env.error(code, what), Outcome::kError,
                 s.timer.seconds());
  destroy_session(sid);
}

void Service::destroy_session(const std::string& sid) {
  const auto it = sessions_.find(sid);
  if (it != sessions_.end() && it->second->is_lease) {
    // Only unmap the lease id if it still points at this session; an
    // epoch-bumped re-grant has already claimed the mapping otherwise.
    const auto li = lease_index_.find(it->second->lease_id);
    if (li != lease_index_.end() && li->second == sid) lease_index_.erase(li);
  }
  if (it != sessions_.end() && it->second->session != nullptr &&
      !it->second->running_chunk) {
    // Terminal paths all run on the loop thread with no chunk in flight,
    // so the worker counters are quiescent and safe to read.
    const verify::SolverCounters c = it->second->session->solver_totals();
    solver_retired_.solves += c.solves;
    solver_retired_.patches += c.patches;
    solver_retired_.rebuilds += c.rebuilds;
    solver_retired_.search_nodes += c.search_nodes;
    solver_retired_.walk_hits += c.walk_hits;
    solver_retired_.walk_fallbacks += c.walk_fallbacks;
  }
  sessions_.erase(sid);
  maybe_finish_drain();
}

// ---------------------------------------------------------------------------
// Connection lifecycle and drain
// ---------------------------------------------------------------------------

void Service::handle_close(std::uint64_t conn) {
  // Orphaned sessions: cancel them so the pool stops burning cycles for
  // a client that is gone. Sends to the dead connection become no-ops.
  std::vector<std::string> to_finalize;
  for (auto& [sid, s] : sessions_) {
    if (s->conn != conn) continue;
    s->cancelled = true;
    if (!s->running_chunk) to_finalize.push_back(sid);
  }
  for (const std::string& sid : to_finalize) {
    const auto it = sessions_.find(sid);
    if (it != sessions_.end()) finalize_cancelled(*it->second);
  }
  maybe_finish_drain();
}

void Service::handle_abuse(std::uint64_t conn, const std::string& what) {
  metrics_.record("_frame", Outcome::kError, 0.0);
  send(conn,
       make_error(next_req_id(), "", ErrorCode::kFrameTooLarge, what));
}

void Service::begin_drain() {
  if (draining_) return;
  draining_ = true;
  server_.stop_accepting();
  std::vector<std::string> idle;
  for (auto& [sid, s] : sessions_) {
    if (!s->running_chunk) idle.push_back(sid);
  }
  for (const std::string& sid : idle) {
    const auto it = sessions_.find(sid);
    if (it != sessions_.end()) finalize_drained(*it->second);
  }
  maybe_finish_drain();
}

void Service::maybe_finish_drain() {
  if (!draining_ || !sessions_.empty() || outstanding_jobs_ != 0) return;
  if (!drain_finalized_) {
    drain_finalized_ = true;
    if (!config_.metrics_path.empty()) {
      std::ofstream out(config_.metrics_path, std::ios::app);
      if (out) metrics_.dump_jsonl(out);
    }
    server_.close_all_after_flush();
  }
  if (server_.connection_count() == 0) loop_.stop();
}

}  // namespace kgdp::service
