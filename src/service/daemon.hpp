// kgdd process wiring: owns the event loop, frame server, and service,
// binds the configured listeners, and (optionally) watches the
// process-wide StopSignal self-pipe so SIGINT/SIGTERM starts a graceful
// drain — in-flight verify sessions checkpoint to drain_dir, replies
// flush, and run() returns. Tests and the bench embed a Daemon on a
// background thread via start_thread()/begin_drain()/join().
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "service/service.hpp"

namespace kgdp::service {

struct DaemonConfig {
  std::vector<net::Endpoint> endpoints;
  net::FrameServerConfig server;
  ServiceConfig service;
  // Drain on SIGINT/SIGTERM via util::StopSignal. Off for in-process
  // daemons (tests, bench) that drain programmatically.
  bool watch_stop_signal = true;
};

class Daemon {
 public:
  // Binds every endpoint; throws std::runtime_error if any bind fails.
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Runs the event loop on the calling thread until the daemon drains.
  void run();

  // Embedded mode: run() on a background thread / thread-safe drain
  // trigger / wait for the loop to finish.
  void start_thread();
  void begin_drain();
  void join();

  // The resolved port of the first TCP listener (ephemeral port 0 is
  // replaced by the kernel's choice); 0 when there is no TCP listener.
  int tcp_port() const { return tcp_port_; }

  Service& service() { return service_; }
  net::EventLoop& loop() { return loop_; }

 private:
  DaemonConfig config_;
  net::EventLoop loop_;
  net::FrameServer server_;
  Service service_;
  int tcp_port_ = 0;
  int stop_fd_ = -1;  // StopSignal pipe fd when watched, else -1
  std::vector<std::string> unix_paths_;  // unlinked on destruction
  std::thread thread_;
};

}  // namespace kgdp::service
