#include "campaign/checkpoint.hpp"

#include <bit>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/json.hpp"
#include "util/durable_file.hpp"
#include "util/log.hpp"

namespace kgdp::campaign {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("kgdp-campaign parse error: " + what);
}

std::string expect_keyword(std::istream& in, const std::string& keyword) {
  std::string word;
  if (!(in >> word) || word != keyword) {
    fail("expected '" + keyword + "', got '" + word + "'");
  }
  return word;
}

std::uint64_t read_u64(std::istream& in, const std::string& keyword) {
  expect_keyword(in, keyword);
  std::uint64_t v = 0;
  if (!(in >> v)) fail("bad value for " + keyword);
  return v;
}

const char* mode_name(verify::CheckMode m) {
  return m == verify::CheckMode::kExhaustive ? "exhaustive" : "sampled";
}

const char* prune_name(verify::PruneMode m) {
  return m == verify::PruneMode::kAuto ? "auto" : "off";
}

}  // namespace

void save_result(std::ostream& out, const verify::CheckResult& res) {
  out << "result " << (res.holds ? 1 : 0) << ' ' << (res.exhaustive ? 1 : 0)
      << ' ' << res.fault_sets_checked << ' ' << res.fault_sets_solved << ' '
      << res.solver_unknowns << ' ' << res.orbits_pruned << ' '
      << res.automorphism_order << ' ' << res.steal_count;
  out << " solver " << res.solver_patches << ' ' << res.solver_rebuilds << ' '
      << res.solver_search_nodes << ' ' << res.solver_scratch_bytes;
  out << " walk " << res.solver_walk_hits << ' ' << res.solver_walk_fallbacks;
  out << " cache " << res.cache_hits << ' ' << res.cache_misses << ' '
      << res.cache_inserts << ' ' << res.cache_evictions;
  out << " workers " << res.worker_solve_seconds.size();
  for (double s : res.worker_solve_seconds) {
    out << ' ' << std::bit_cast<std::uint64_t>(s);
  }
  if (res.counterexample) {
    out << " ce ";
    if (res.counterexample_index) {
      out << *res.counterexample_index;
    } else {
      out << '-';  // sampled counterexamples carry no enumeration index
    }
    out << ' ' << res.counterexample->universe() << ' '
        << res.counterexample->size();
    for (int v : res.counterexample->nodes()) out << ' ' << v;
  } else {
    out << " ce none";
  }
  out << '\n';
}

verify::CheckResult load_result(std::istream& in) {
  verify::CheckResult res;
  expect_keyword(in, "result");
  int holds = 0, exhaustive = 0;
  if (!(in >> holds >> exhaustive >> res.fault_sets_checked >>
        res.fault_sets_solved >> res.solver_unknowns >> res.orbits_pruned >>
        res.automorphism_order >> res.steal_count)) {
    fail("truncated result counters");
  }
  res.holds = holds != 0;
  res.exhaustive = exhaustive != 0;
  // Optional solver-counter block (schema_version >= 2); absent in files
  // written before the zero-allocation engine, which load with zeros.
  std::string word;
  if (!(in >> word)) fail("truncated result");
  if (word == "solver") {
    if (!(in >> res.solver_patches >> res.solver_rebuilds >>
          res.solver_search_nodes >> res.solver_scratch_bytes)) {
      fail("truncated solver counters");
    }
    if (!(in >> word)) fail("truncated result");
  }
  // Optional walk/cache blocks; files written before the batched
  // solver load with zeros.
  if (word == "walk") {
    if (!(in >> res.solver_walk_hits >> res.solver_walk_fallbacks)) {
      fail("truncated walk counters");
    }
    if (!(in >> word)) fail("truncated result");
  }
  if (word == "cache") {
    if (!(in >> res.cache_hits >> res.cache_misses >> res.cache_inserts >>
          res.cache_evictions)) {
      fail("truncated cache counters");
    }
    if (!(in >> word)) fail("truncated result");
  }
  if (word != "workers") fail("expected 'workers', got '" + word + "'");
  std::size_t workers = 0;
  if (!(in >> workers)) fail("bad value for workers");
  res.worker_solve_seconds.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    std::uint64_t bits = 0;
    if (!(in >> bits)) fail("truncated worker seconds");
    res.worker_solve_seconds.push_back(std::bit_cast<double>(bits));
  }
  expect_keyword(in, "ce");
  std::string index_token;
  if (!(in >> index_token)) fail("truncated counterexample");
  if (index_token != "none") {
    if (index_token != "-") {
      try {
        res.counterexample_index = std::stoull(index_token);
      } catch (const std::exception&) {
        fail("bad counterexample index: " + index_token);
      }
    }
    int universe = 0, count = 0;
    if (!(in >> universe >> count) || universe < 1 || count < 0 ||
        count > universe) {
      fail("bad counterexample shape");
    }
    std::vector<int> nodes(count);
    for (int& v : nodes) {
      if (!(in >> v) || v < 0 || v >= universe) {
        fail("bad counterexample node");
      }
    }
    res.counterexample = kgd::FaultSet(universe, nodes);
  }
  return res;
}

void save_campaign(std::ostream& out, const CampaignState& state) {
  const CampaignConfig& c = state.config;
  out << "kgdp-campaign 1\n";
  out << "schema_version " << io::kSchemaVersion << '\n';
  out << "grid " << c.n_min << ' ' << c.n_max << ' ' << c.k_min << ' '
      << c.k_max << '\n';
  out << "mode " << mode_name(c.mode) << '\n';
  out << "samples " << c.samples << '\n';
  out << "seed " << c.seed << '\n';
  out << "prune " << prune_name(c.prune) << '\n';
  out << "shard " << c.shard_index << ' ' << c.shard_count << '\n';
  out << "chunk " << c.chunk << '\n';
  out << "checkpoint_every " << c.checkpoint_every << '\n';
  out << "instances " << state.instances.size() << '\n';
  for (const InstanceState& inst : state.instances) {
    out << "instance " << inst.n << ' ' << inst.k << ' ';
    switch (inst.status) {
      case InstanceStatus::kPending:
        out << "pending\n";
        break;
      case InstanceStatus::kRunning:
        out << "running\n" << inst.cursor;
        if (!inst.cursor.empty() && inst.cursor.back() != '\n') out << '\n';
        break;
      case InstanceStatus::kDone:
        out << "done\n";
        save_result(out, inst.result);
        break;
    }
  }
}

CampaignState load_campaign(std::istream& in) {
  CampaignState state;
  CampaignConfig& c = state.config;
  expect_keyword(in, "kgdp-campaign");
  int version = 0;
  if (!(in >> version) || version != 1) fail("unsupported version");
  const int schema = static_cast<int>(read_u64(in, "schema_version"));
  if (schema < 1) fail("bad schema_version");
  expect_keyword(in, "grid");
  if (!(in >> c.n_min >> c.n_max >> c.k_min >> c.k_max)) fail("bad grid");
  expect_keyword(in, "mode");
  std::string mode;
  if (!(in >> mode)) fail("bad mode");
  if (mode == "exhaustive") {
    c.mode = verify::CheckMode::kExhaustive;
  } else if (mode == "sampled") {
    c.mode = verify::CheckMode::kSampled;
  } else {
    fail("unknown mode: " + mode);
  }
  c.samples = read_u64(in, "samples");
  c.seed = read_u64(in, "seed");
  expect_keyword(in, "prune");
  std::string prune;
  if (!(in >> prune)) fail("bad prune");
  if (prune == "auto") {
    c.prune = verify::PruneMode::kAuto;
  } else if (prune == "off") {
    c.prune = verify::PruneMode::kOff;
  } else {
    fail("unknown prune mode: " + prune);
  }
  expect_keyword(in, "shard");
  if (!(in >> c.shard_index >> c.shard_count) || c.shard_count < 1 ||
      c.shard_index >= c.shard_count) {
    fail("bad shard spec");
  }
  c.chunk = read_u64(in, "chunk");
  c.checkpoint_every = read_u64(in, "checkpoint_every");
  const std::uint64_t count = read_u64(in, "instances");
  state.instances.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    InstanceState inst;
    expect_keyword(in, "instance");
    std::string status;
    if (!(in >> inst.n >> inst.k >> status)) fail("truncated instance");
    if (status == "pending") {
      inst.status = InstanceStatus::kPending;
    } else if (status == "running") {
      inst.status = InstanceStatus::kRunning;
      // The cursor grammar is token-based and "end"-terminated, so
      // re-serializing one token per line preserves its meaning.
      std::string token;
      std::ostringstream cursor;
      while (true) {
        if (!(in >> token)) fail("truncated cursor block");
        cursor << token << '\n';
        if (token == "end") break;
      }
      inst.cursor = cursor.str();
    } else if (status == "done") {
      inst.status = InstanceStatus::kDone;
      inst.result = load_result(in);
    } else {
      fail("unknown instance status: " + status);
    }
    state.instances.push_back(std::move(inst));
  }
  return state;
}

void write_campaign_file(const std::string& path,
                         const CampaignState& state) {
  std::ostringstream out;
  save_campaign(out, state);
  util::durable_write_file(path, out.str());
}

CampaignState load_campaign_file(const std::string& path) {
  CampaignState state;
  util::CheckpointLoadInfo info;
  util::load_checkpoint_file(
      path, [&state](std::istream& in) { state = load_campaign(in); }, &info);
  for (const std::string& q : info.quarantined) {
    util::log_warn("campaign checkpoint quarantined: ", q);
  }
  if (info.from_backup) {
    util::log_warn("campaign checkpoint ", path,
                   ": primary unusable, restored from backup generation");
  }
  return state;
}

}  // namespace kgdp::campaign
