// Fleet-backed campaign runner: the same (n, k) certification grid as
// CampaignRunner, but each exhaustive instance is dispatched across
// remote kgdd workers by a fleet::Coordinator instead of swept in-
// process. Checkpointing is instance-granular — a completed instance's
// verdict is durable (same kgdp-campaign file as the local runner, so
// status/resume/merge tooling is shared), while a killed coordinator
// redoes at most the instance in flight: mid-instance positions live in
// lease cursors held in coordinator memory, which die with it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "campaign/checkpoint.hpp"
#include "fleet/coordinator.hpp"

namespace kgdp::campaign {

struct FleetRunOutcome {
  bool complete = false;  // every instance reached kDone
  bool all_hold = false;  // over the instances that are done
  std::uint64_t instances_run = 0;
  // Fleet totals summed over the instances this call ran.
  std::uint64_t leases_planned = 0;
  std::uint64_t leases_stolen = 0;
  std::uint64_t leases_reassigned = 0;
  std::uint64_t workers_lost = 0;
};

class FleetCampaignRunner {
 public:
  // The coordinator is caller-owned (its WorkerPool persists across
  // instances and runner instances alike) and carries the telemetry
  // writer. The campaign must be exhaustive and unsharded — lease
  // ranges already partition each instance, and a sampled sweep has no
  // slot space to lease. Throws std::invalid_argument otherwise.
  // `checkpoint_path` may be empty (checkpointing disabled).
  FleetCampaignRunner(CampaignState state, std::string checkpoint_path,
                      fleet::Coordinator* coordinator);

  // Runs pending instances in grid order to completion. `stop` (may be
  // empty) is polled between instances — the finest interruption grain
  // this runner has; a true return checkpoints and hands back an
  // incomplete outcome that a later run() resumes. An instance that was
  // kRunning (a cursor from an interrupted local run, or a coordinator
  // killed mid-instance) restarts from its beginning: single-session
  // cursors do not map onto lease partitions. Throws std::runtime_error
  // when the fleet cannot finish an instance (all workers lost).
  FleetRunOutcome run(const std::function<bool()>& stop = {});

  const CampaignState& state() const { return state_; }

 private:
  void checkpoint();

  CampaignState state_;
  std::string checkpoint_path_;
  fleet::Coordinator* coordinator_;
};

}  // namespace kgdp::campaign
