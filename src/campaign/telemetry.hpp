// Structured JSONL telemetry for certification campaigns. Every event is
// one JSON object per line, routed through io::Json (never hand-built
// printf fragments) and stamped with the event name, a monotonic
// sequence number, and the export schema_version, so long-running sweeps
// can be tailed, parsed, and aggregated by external tooling.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "io/json.hpp"
#include "verify/checker.hpp"

namespace kgdp::campaign {

class TelemetryWriter {
 public:
  // `out` may be null: telemetry disabled, emit() is a no-op.
  explicit TelemetryWriter(std::ostream* out = nullptr) : out_(out) {}

  bool enabled() const { return out_ != nullptr; }

  // Emits `fields` plus {"event", "seq", "schema_version"} as one JSONL
  // line and flushes, so a killed campaign loses at most the line being
  // written.
  void emit(const std::string& event, io::JsonObject fields);

 private:
  std::ostream* out_;
  std::uint64_t seq_ = 0;
};

// JSON view of a checker verdict (verdict, counters, counterexample).
// Shared by `kgd_cli verify --json`, instance_done telemetry events, and
// the campaign status surface.
io::Json check_result_to_json(const verify::CheckResult& res);

}  // namespace kgdp::campaign
