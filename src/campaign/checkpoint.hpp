// On-disk campaign state: a line-oriented `kgdp-campaign` text file in
// the same spirit as the kgdp-graph format. One file holds the campaign
// configuration plus one entry per (n, k) instance — pending, running
// (with an embedded CheckSession cursor), or done (with the final
// verdict) — which is everything a later process needs to resume the
// sweep byte-identically or to merge shard files. Files are persisted
// through util::durable_file — CRC32C envelope, fsync'd atomic
// replace, `.bak` generation — so a kill or torn write at any syscall
// boundary still leaves the previous good checkpoint loadable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "verify/check_session.hpp"

namespace kgdp::campaign {

struct CampaignConfig {
  // Inclusive (n, k) grid; instances are the supported pairs in
  // row-major (n outer, k inner) order.
  int n_min = 1, n_max = 1, k_min = 1, k_max = 1;
  verify::CheckMode mode = verify::CheckMode::kExhaustive;
  std::uint64_t samples = 1000;  // sampled mode only
  std::uint64_t seed = 1;        // sampled mode only
  verify::PruneMode prune = verify::PruneMode::kAuto;
  // This file's slice of each instance's quantifier domain.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  // Work items per CheckSession::advance call.
  std::uint64_t chunk = 256;
  // Checkpoint cadence: write the campaign file every this many chunks.
  std::uint64_t checkpoint_every = 4;
};

enum class InstanceStatus { kPending, kRunning, kDone };

struct InstanceState {
  int n = 0, k = 0;
  InstanceStatus status = InstanceStatus::kPending;
  std::string cursor;           // serialized session cursor when running
  verify::CheckResult result;   // final verdict when done
};

struct CampaignState {
  CampaignConfig config;
  std::vector<InstanceState> instances;
};

// Verdict serialization used inside campaign files (and tested on its
// own): exact round-trip including bit-cast solve-second accumulators.
void save_result(std::ostream& out, const verify::CheckResult& res);
verify::CheckResult load_result(std::istream& in);

void save_campaign(std::ostream& out, const CampaignState& state);
// Throws std::runtime_error with a line-oriented message on malformed
// input (bad magic, unknown mode, truncated cursor or result blocks).
CampaignState load_campaign(std::istream& in);

// Crash-safe file write via util::durable_write_file; throws
// std::runtime_error on IO failure.
void write_campaign_file(const std::string& path, const CampaignState& state);
// Classified load via util::load_checkpoint_file: accepts legacy
// un-enveloped files, quarantines truncated/corrupt/unparsable
// candidates to `*.corrupt`, falls back to the `.bak` generation;
// throws util::CheckpointError.
CampaignState load_campaign_file(const std::string& path);

}  // namespace kgdp::campaign
