#include "campaign/campaign.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "kgd/factory.hpp"
#include "util/timer.hpp"

namespace kgdp::campaign {

namespace {

verify::CheckRequest instance_request(const CampaignConfig& c,
                                      const InstanceState& inst,
                                      util::ThreadPool* pool,
                                      verify::VerdictCache* cache) {
  verify::CheckRequest req;
  req.mode = c.mode;
  req.max_faults = inst.k;
  req.samples = c.samples;
  req.seed = c.seed;
  req.options.prune = c.prune;
  req.options.pool = pool;
  req.options.cache = cache;
  req.shard_index = c.shard_index;
  req.shard_count = c.shard_count;
  return req;
}

kgd::SolutionGraph build_instance(const InstanceState& inst) {
  auto built = kgd::build_solution(inst.n, inst.k);
  if (!built) {
    throw std::runtime_error("campaign: no construction for n=" +
                             std::to_string(inst.n) +
                             " k=" + std::to_string(inst.k));
  }
  return std::move(*built);
}

io::JsonObject instance_fields(const CampaignConfig& c,
                               const InstanceState& inst) {
  io::JsonObject f;
  f["n"] = inst.n;
  f["k"] = inst.k;
  f["shard_index"] = static_cast<std::int64_t>(c.shard_index);
  f["shard_count"] = static_cast<std::int64_t>(c.shard_count);
  return f;
}

// Pulls one "key <u64>" pair out of a serialized cursor, for status
// display only (the session itself re-parses the cursor authoritatively).
bool cursor_field(const std::string& cursor, const std::string& key,
                  std::uint64_t* out) {
  std::istringstream is(cursor);
  std::string token;
  while (is >> token) {
    if (token == key) return static_cast<bool>(is >> *out);
  }
  return false;
}

bool config_compatible(const CampaignConfig& a, const CampaignConfig& b) {
  return a.n_min == b.n_min && a.n_max == b.n_max && a.k_min == b.k_min &&
         a.k_max == b.k_max && a.mode == b.mode && a.samples == b.samples &&
         a.seed == b.seed && a.prune == b.prune &&
         a.shard_count == b.shard_count;
}

}  // namespace

CampaignState make_campaign(const CampaignConfig& config) {
  if (config.n_min < 1 || config.n_min > config.n_max || config.k_min < 1 ||
      config.k_min > config.k_max) {
    throw std::invalid_argument("campaign: bad (n, k) grid");
  }
  if (config.shard_count < 1 || config.shard_index >= config.shard_count) {
    throw std::invalid_argument("campaign: bad shard spec");
  }
  if (config.mode == verify::CheckMode::kSampled && config.shard_count > 1) {
    throw std::invalid_argument(
        "campaign: sampled campaigns cannot be sharded");
  }
  if (config.chunk < 1) {
    throw std::invalid_argument("campaign: chunk must be >= 1");
  }
  CampaignState state;
  state.config = config;
  for (int n = config.n_min; n <= config.n_max; ++n) {
    for (int k = config.k_min; k <= config.k_max; ++k) {
      if (!kgd::is_supported(n, k)) continue;
      InstanceState inst;
      inst.n = n;
      inst.k = k;
      state.instances.push_back(std::move(inst));
    }
  }
  if (state.instances.empty()) {
    throw std::invalid_argument(
        "campaign: no supported (n, k) instances in the grid");
  }
  return state;
}

CampaignRunner::CampaignRunner(CampaignState state,
                               std::string checkpoint_path,
                               TelemetryWriter* telemetry,
                               util::ThreadPool* pool)
    : state_(std::move(state)),
      checkpoint_path_(std::move(checkpoint_path)),
      telemetry_(telemetry),
      pool_(pool) {}

void CampaignRunner::checkpoint() {
  if (checkpoint_path_.empty()) return;
  write_campaign_file(checkpoint_path_, state_);
}

RunOutcome CampaignRunner::run(const RunLimits& limits) {
  RunOutcome out;
  std::uint64_t since_checkpoint = 0;

  auto done_all_hold = [this] {
    bool all = true;
    for (const InstanceState& inst : state_.instances) {
      if (inst.status == InstanceStatus::kDone && !inst.result.holds) {
        all = false;
      }
    }
    return all;
  };

  if (telemetry_ != nullptr) {
    io::JsonObject f;
    f["n_min"] = state_.config.n_min;
    f["n_max"] = state_.config.n_max;
    f["k_min"] = state_.config.k_min;
    f["k_max"] = state_.config.k_max;
    f["mode"] = state_.config.mode == verify::CheckMode::kExhaustive
                    ? "exhaustive"
                    : "sampled";
    f["shard_index"] = static_cast<std::int64_t>(state_.config.shard_index);
    f["shard_count"] = static_cast<std::int64_t>(state_.config.shard_count);
    f["instances"] = static_cast<std::uint64_t>(state_.instances.size());
    telemetry_->emit("run_start", std::move(f));
  }

  for (InstanceState& inst : state_.instances) {
    if (inst.status == InstanceStatus::kDone) continue;
    const kgd::SolutionGraph sg = build_instance(inst);
    verify::CheckSession session(
        sg, instance_request(state_.config, inst, pool_, cache_));
    if (inst.status == InstanceStatus::kRunning) {
      std::istringstream is(inst.cursor);
      session.restore(is);
    }
    inst.status = InstanceStatus::kRunning;

    while (!session.done()) {
      if ((limits.max_chunks != 0 && out.chunks_run >= limits.max_chunks) ||
          (limits.stop && limits.stop())) {
        // Chunk budget exhausted: make the in-flight position durable and
        // hand back an interrupted outcome the caller can resume from.
        std::ostringstream cursor;
        session.save(cursor);
        inst.cursor = cursor.str();
        checkpoint();
        if (telemetry_ != nullptr) {
          io::JsonObject f = instance_fields(state_.config, inst);
          f["items_done"] = session.items_done();
          f["items_total"] = session.items_total();
          f["chunks_run"] = out.chunks_run;
          telemetry_->emit("campaign_interrupted", std::move(f));
        }
        out.complete = false;
        out.all_hold = done_all_hold();
        return out;
      }

      const std::uint64_t solved_before =
          session.result().fault_sets_solved;
      const util::Timer timer;
      session.advance(state_.config.chunk);
      const double seconds = timer.seconds();
      ++out.chunks_run;
      ++since_checkpoint;

      if (telemetry_ != nullptr) {
        const verify::CheckResult snap = session.result();
        io::JsonObject f = instance_fields(state_.config, inst);
        f["items_done"] = session.items_done();
        f["items_total"] = session.items_total();
        f["fault_sets_checked"] = snap.fault_sets_checked;
        f["fault_sets_solved"] = snap.fault_sets_solved;
        f["orbits_pruned"] = snap.orbits_pruned;
        f["steal_count"] = snap.steal_count;
        f["solver_patches"] = snap.solver_patches;
        f["solver_rebuilds"] = snap.solver_rebuilds;
        f["solver_search_nodes"] = snap.solver_search_nodes;
        f["solver_walk_hits"] = snap.solver_walk_hits;
        f["solver_walk_fallbacks"] = snap.solver_walk_fallbacks;
        f["cache_hits"] = snap.cache_hits;
        f["cache_misses"] = snap.cache_misses;
        const std::uint64_t chunk_solved =
            snap.fault_sets_solved - solved_before;
        f["chunk_solved"] = chunk_solved;
        f["chunk_seconds"] = seconds;
        f["solves_per_sec"] =
            seconds > 0.0 ? static_cast<double>(chunk_solved) / seconds : 0.0;
        io::JsonArray worker_seconds;
        for (double s : snap.worker_solve_seconds) worker_seconds.push_back(s);
        f["worker_solve_seconds"] = std::move(worker_seconds);
        telemetry_->emit("chunk", std::move(f));
      }

      if (state_.config.checkpoint_every != 0 &&
          since_checkpoint >= state_.config.checkpoint_every &&
          !session.done()) {
        std::ostringstream cursor;
        session.save(cursor);
        inst.cursor = cursor.str();
        checkpoint();
        since_checkpoint = 0;
        if (telemetry_ != nullptr) {
          io::JsonObject f = instance_fields(state_.config, inst);
          f["items_done"] = session.items_done();
          f["items_total"] = session.items_total();
          f["path"] = checkpoint_path_;
          telemetry_->emit("checkpoint", std::move(f));
        }
      }
    }

    inst.result = session.result();
    inst.status = InstanceStatus::kDone;
    inst.cursor.clear();
    checkpoint();  // instance completion is always made durable
    if (telemetry_ != nullptr) {
      io::JsonObject f = instance_fields(state_.config, inst);
      f["result"] = check_result_to_json(inst.result);
      telemetry_->emit("instance_done", std::move(f));
    }
  }

  out.complete = true;
  out.all_hold = done_all_hold();
  checkpoint();
  if (telemetry_ != nullptr) {
    io::JsonObject f;
    f["complete"] = out.complete;
    f["all_hold"] = out.all_hold;
    f["chunks_run"] = out.chunks_run;
    telemetry_->emit("campaign_done", std::move(f));
  }
  return out;
}

CampaignState merge_shards(const std::vector<CampaignState>& shards) {
  if (shards.empty()) {
    throw std::invalid_argument("merge_shards: no shard files");
  }
  const std::uint32_t count = shards[0].config.shard_count;
  if (shards.size() != count) {
    throw std::invalid_argument(
        "merge_shards: expected " + std::to_string(count) +
        " shard files (shard_count), got " + std::to_string(shards.size()));
  }
  std::vector<const CampaignState*> by_index(count, nullptr);
  for (const CampaignState& shard : shards) {
    if (!config_compatible(shard.config, shards[0].config)) {
      throw std::invalid_argument(
          "merge_shards: shard configs disagree (grid/mode/seed/prune)");
    }
    if (shard.instances.size() != shards[0].instances.size()) {
      throw std::invalid_argument(
          "merge_shards: shard instance lists disagree");
    }
    const std::uint32_t idx = shard.config.shard_index;
    if (by_index[idx] != nullptr) {
      throw std::invalid_argument("merge_shards: duplicate shard " +
                                  std::to_string(idx));
    }
    by_index[idx] = &shard;
    for (const InstanceState& inst : shard.instances) {
      if (inst.status != InstanceStatus::kDone) {
        throw std::invalid_argument(
            "merge_shards: shard " + std::to_string(idx) +
            " has unfinished instances; run or resume it first");
      }
    }
  }

  CampaignState out;
  out.config = shards[0].config;
  out.config.shard_index = 0;
  out.config.shard_count = 1;
  for (std::size_t i = 0; i < shards[0].instances.size(); ++i) {
    InstanceState merged;
    merged.n = shards[0].instances[i].n;
    merged.k = shards[0].instances[i].k;
    merged.status = InstanceStatus::kDone;
    if (count == 1) {
      merged.result = by_index[0]->instances[i].result;
    } else {
      const kgd::SolutionGraph sg = build_instance(merged);
      std::vector<verify::CheckResult> results;
      results.reserve(count);
      for (std::uint32_t s = 0; s < count; ++s) {
        const InstanceState& si = by_index[s]->instances[i];
        if (si.n != merged.n || si.k != merged.k) {
          throw std::invalid_argument(
              "merge_shards: shard instance grids disagree");
        }
        results.push_back(si.result);
      }
      merged.result = verify::merge_shard_results(sg, merged.k,
                                                  out.config.prune, results);
    }
    out.instances.push_back(std::move(merged));
  }
  return out;
}

std::string status_summary(const CampaignState& state) {
  const CampaignConfig& c = state.config;
  std::ostringstream os;
  os << "campaign: grid n=[" << c.n_min << ", " << c.n_max << "] k=["
     << c.k_min << ", " << c.k_max << "], mode "
     << (c.mode == verify::CheckMode::kExhaustive ? "exhaustive" : "sampled")
     << ", prune "
     << (c.prune == verify::PruneMode::kAuto ? "auto" : "off") << ", shard "
     << c.shard_index << "/" << c.shard_count << '\n';
  std::size_t done = 0, running = 0, pending = 0, failing = 0;
  for (const InstanceState& inst : state.instances) {
    os << "  G(" << inst.n << "," << inst.k << "): ";
    switch (inst.status) {
      case InstanceStatus::kPending:
        ++pending;
        os << "pending\n";
        break;
      case InstanceStatus::kRunning: {
        ++running;
        std::uint64_t pos = 0, solved = 0;
        cursor_field(inst.cursor, "pos", &pos);
        cursor_field(inst.cursor, "solved", &solved);
        os << "running (cursor at slot " << pos << ", " << solved
           << " solved)\n";
        break;
      }
      case InstanceStatus::kDone:
        ++done;
        if (!inst.result.holds) ++failing;
        os << (inst.result.holds ? "HOLDS" : "FAILS") << " ("
           << inst.result.fault_sets_checked << " fault sets, "
           << inst.result.fault_sets_solved << " solved, "
           << inst.result.orbits_pruned << " pruned)";
        if (inst.result.counterexample) {
          os << " counterexample " << inst.result.counterexample->to_string();
        }
        os << '\n';
        break;
    }
  }
  os << "  " << done << " done (" << failing << " failing), " << running
     << " running, " << pending << " pending\n";
  return os.str();
}

}  // namespace kgdp::campaign
