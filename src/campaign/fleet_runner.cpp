#include "campaign/fleet_runner.hpp"

#include <stdexcept>
#include <utility>

#include "campaign/telemetry.hpp"
#include "kgd/factory.hpp"

namespace kgdp::campaign {

FleetCampaignRunner::FleetCampaignRunner(CampaignState state,
                                         std::string checkpoint_path,
                                         fleet::Coordinator* coordinator)
    : state_(std::move(state)),
      checkpoint_path_(std::move(checkpoint_path)),
      coordinator_(coordinator) {
  if (coordinator_ == nullptr) {
    throw std::invalid_argument("fleet campaign: no coordinator");
  }
  if (state_.config.mode != verify::CheckMode::kExhaustive) {
    throw std::invalid_argument(
        "fleet campaign: only exhaustive campaigns can be fleet-run");
  }
  if (state_.config.shard_count != 1) {
    throw std::invalid_argument(
        "fleet campaign: sharding and fleet dispatch are mutually "
        "exclusive (leases already partition each instance)");
  }
}

void FleetCampaignRunner::checkpoint() {
  if (checkpoint_path_.empty()) return;
  write_campaign_file(checkpoint_path_, state_);
}

FleetRunOutcome FleetCampaignRunner::run(const std::function<bool()>& stop) {
  FleetRunOutcome out;

  auto done_all_hold = [this] {
    for (const InstanceState& inst : state_.instances) {
      if (inst.status == InstanceStatus::kDone && !inst.result.holds) {
        return false;
      }
    }
    return true;
  };

  {
    io::JsonObject f;
    f["n_min"] = state_.config.n_min;
    f["n_max"] = state_.config.n_max;
    f["k_min"] = state_.config.k_min;
    f["k_max"] = state_.config.k_max;
    f["instances"] = static_cast<std::uint64_t>(state_.instances.size());
    f["workers"] = coordinator_->worker_count();
    coordinator_->emit_telemetry("fleet_run_start", std::move(f));
  }

  for (InstanceState& inst : state_.instances) {
    if (inst.status == InstanceStatus::kDone) continue;
    if (stop && stop()) {
      checkpoint();
      out.complete = false;
      out.all_hold = done_all_hold();
      return out;
    }
    // A stale mid-instance cursor (from an interrupted *local* run) is
    // discarded — fleet recovery state lives in the coordinator's own
    // durable lease-table checkpoint, which run_instance resumes from
    // when one matches; the merged verdict is identical either way.
    inst.cursor.clear();
    inst.status = InstanceStatus::kPending;

    auto built = kgd::build_solution(inst.n, inst.k);
    if (!built) {
      throw std::runtime_error("fleet campaign: no construction for n=" +
                               std::to_string(inst.n) +
                               " k=" + std::to_string(inst.k));
    }
    fleet::InstanceOutcome res;
    try {
      res = coordinator_->run_instance(*built, inst.n, inst.k, inst.k,
                                       state_.config.prune);
    } catch (const fleet::AllWorkersDeadError& e) {
      // Every endpoint written off with leases outstanding: record the
      // terminal cause in telemetry, keep the campaign checkpoint (the
      // coordinator's lease checkpoint also survives, so a resume with
      // healthy workers continues mid-instance), and let the caller map
      // the typed error to its documented exit code.
      checkpoint();
      io::JsonObject f;
      f["n"] = inst.n;
      f["k"] = inst.k;
      f["error"] = std::string(e.what());
      coordinator_->emit_telemetry("fleet_all_workers_dead", std::move(f));
      throw;
    }

    inst.result = res.result;
    inst.status = InstanceStatus::kDone;
    ++out.instances_run;
    out.leases_planned += res.leases_planned;
    out.leases_stolen += res.leases_stolen;
    out.leases_reassigned += res.leases_reassigned;
    out.workers_lost += res.workers_lost;
    checkpoint();  // instance completion is always made durable

    io::JsonObject f;
    f["n"] = inst.n;
    f["k"] = inst.k;
    f["leases"] = res.leases_planned;
    f["stolen"] = res.leases_stolen;
    f["reassigned"] = res.leases_reassigned;
    f["workers_lost"] = res.workers_lost;
    io::JsonArray per_worker;
    for (std::size_t w = 0; w < res.per_worker_solved.size(); ++w) {
      io::JsonObject wf;
      wf["worker"] = coordinator_->worker_endpoint(static_cast<int>(w))
                         .to_string();
      wf["solved"] = res.per_worker_solved[w];
      wf["leases_done"] = res.per_worker_leases[w];
      per_worker.push_back(io::Json(std::move(wf)));
    }
    f["per_worker"] = std::move(per_worker);
    f["result"] = check_result_to_json(inst.result);
    coordinator_->emit_telemetry("fleet_instance_done", std::move(f));
  }

  out.complete = true;
  out.all_hold = done_all_hold();
  checkpoint();
  {
    io::JsonObject f;
    f["complete"] = out.complete;
    f["all_hold"] = out.all_hold;
    f["instances_run"] = out.instances_run;
    coordinator_->emit_telemetry("fleet_campaign_done", std::move(f));
  }
  return out;
}

}  // namespace kgdp::campaign
