#include "campaign/telemetry.hpp"

#include <ostream>

namespace kgdp::campaign {

void TelemetryWriter::emit(const std::string& event, io::JsonObject fields) {
  if (out_ == nullptr) return;
  fields["event"] = event;
  fields["seq"] = seq_++;
  fields["schema_version"] = io::kSchemaVersion;
  *out_ << io::Json(std::move(fields)).dump() << '\n';
  out_->flush();
}

io::Json check_result_to_json(const verify::CheckResult& res) {
  io::JsonObject o;
  o["schema_version"] = io::kSchemaVersion;
  o["holds"] = res.holds;
  o["exhaustive"] = res.exhaustive;
  o["fault_sets_checked"] = res.fault_sets_checked;
  o["fault_sets_solved"] = res.fault_sets_solved;
  o["solver_unknowns"] = res.solver_unknowns;
  o["orbits_pruned"] = res.orbits_pruned;
  o["automorphism_order"] = res.automorphism_order;
  o["steal_count"] = res.steal_count;
  // Solver engine counters (schema_version >= 2). Schedule-dependent
  // observability: patches vs rebuilds depend on chunking and stealing.
  o["solver_patches"] = res.solver_patches;
  o["solver_rebuilds"] = res.solver_rebuilds;
  o["solver_search_nodes"] = res.solver_search_nodes;
  o["solver_scratch_bytes"] = res.solver_scratch_bytes;
  // Batched-solver walk split and verdict-cache traffic (all zero when
  // the walk never ran / no cache was attached).
  o["solver_walk_hits"] = res.solver_walk_hits;
  o["solver_walk_fallbacks"] = res.solver_walk_fallbacks;
  // Which batch setup kernel actually ran (v6).
  o["solver_kernel_name"] = std::string(res.solver_kernel_name);
  o["solver_kernel_width"] = static_cast<std::int64_t>(res.solver_kernel_width);
  o["solver_kernel_isa"] = std::string(res.solver_kernel_isa);
  o["cache_hits"] = res.cache_hits;
  o["cache_misses"] = res.cache_misses;
  o["cache_inserts"] = res.cache_inserts;
  o["cache_evictions"] = res.cache_evictions;
  io::JsonArray seconds;
  for (double s : res.worker_solve_seconds) seconds.push_back(s);
  o["worker_solve_seconds"] = std::move(seconds);
  if (res.counterexample) {
    io::JsonArray nodes;
    for (int v : res.counterexample->nodes()) nodes.push_back(v);
    o["counterexample"] = std::move(nodes);
    if (res.counterexample_index) {
      o["counterexample_index"] = *res.counterexample_index;
    }
  } else {
    o["counterexample"] = nullptr;
  }
  return io::Json(std::move(o));
}

}  // namespace kgdp::campaign
