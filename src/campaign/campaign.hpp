// Checkpointable, shardable certification campaigns: a sweep of
// CheckSessions over a configurable (n, k) grid. The runner advances one
// instance at a time in bounded chunks, checkpoints the whole campaign
// to disk at a configurable cadence (and whenever an instance finishes),
// emits JSONL telemetry per chunk, and can be interrupted at any point —
// resuming from the checkpoint reproduces the uninterrupted run
// byte-identically (verdict, counterexample, counters). Shard campaigns
// certify disjoint slices of every instance's fault space; merge_shards
// folds S completed shard files into the unsharded result.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "campaign/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace kgdp::campaign {

// Expands the config's grid into the supported (n, k) instances, all
// pending. Throws std::invalid_argument on an inverted or empty grid,
// or a sharded sampled campaign.
CampaignState make_campaign(const CampaignConfig& config);

struct RunLimits {
  // Stop (checkpointing first) after this many chunks across the whole
  // run; 0 = unlimited. This is the deterministic interruption hook used
  // by tests and the CI kill/resume drill.
  std::uint64_t max_chunks = 0;
  // Cooperative interruption: checked before each chunk; once it returns
  // true the runner checkpoints immediately and returns an incomplete
  // outcome, exactly like the chunk-budget path. Wired to
  // util::StopSignal by `kgd_cli campaign run` so SIGINT/SIGTERM lose at
  // most one chunk of work, and reused by the kgdd drain.
  std::function<bool()> stop;
};

struct RunOutcome {
  bool complete = false;       // every instance reached kDone
  bool all_hold = false;       // over the instances that are done
  std::uint64_t chunks_run = 0;
};

class CampaignRunner {
 public:
  // `checkpoint_path` may be empty (checkpointing disabled); `telemetry`
  // and `pool` may be null. State is moved in; read it back via state().
  CampaignRunner(CampaignState state, std::string checkpoint_path,
                 TelemetryWriter* telemetry = nullptr,
                 util::ThreadPool* pool = nullptr);

  // Optional shared orbit-canonical verdict cache handed to every
  // instance session (caller-owned, must outlive run()). A runtime
  // accelerator only: verdicts and checkpoints are bit-identical with
  // or without it, so it is not part of the campaign config or file.
  void set_verdict_cache(verify::VerdictCache* cache) { cache_ = cache; }

  // Advances pending/running instances in grid order until the campaign
  // completes or the chunk limit is hit. Safe to call again after an
  // interrupted return. Throws std::runtime_error when an instance's
  // construction is unsupported or its saved cursor does not match.
  RunOutcome run(const RunLimits& limits = {});

  const CampaignState& state() const { return state_; }

 private:
  void checkpoint();

  CampaignState state_;
  std::string checkpoint_path_;
  TelemetryWriter* telemetry_;
  util::ThreadPool* pool_;
  verify::VerdictCache* cache_ = nullptr;
};

// Merges S completed shard campaigns (shard i of S over an identical
// grid/config) into the equivalent unsharded campaign: per instance the
// lowest-index counterexample wins and counters are recomputed
// canonically (verify::merge_shard_results). Throws std::invalid_argument
// on inconsistent configs, duplicate/missing shards, or unfinished
// instances.
CampaignState merge_shards(const std::vector<CampaignState>& shards);

// Human-readable progress table (one line per instance plus a summary).
std::string status_summary(const CampaignState& state);

}  // namespace kgdp::campaign
