// Tiny JSON emitter (serialisation only) for exporting graphs and
// experiment records without an external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace kgdp::io {

// Version of the machine-readable export schemas (the `schema_version`
// field on `kgd_cli json` output, certificate headers, and campaign
// telemetry events). Bump when any of those surfaces changes shape.
inline constexpr int kSchemaVersion = 1;

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}
  Json(std::int64_t i) : v_(i) {}
  Json(std::uint64_t u) : v_(static_cast<std::int64_t>(u)) {}
  Json(double d) : v_(d) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(JsonArray a) : v_(std::move(a)) {}
  Json(JsonObject o) : v_(std::move(o)) {}

  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      v_;
};

}  // namespace kgdp::io
