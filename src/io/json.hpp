// Tiny JSON value type: emitter plus a strict recursive-descent parser,
// hardened for the wire (the kgdd newline-delimited JSON protocol):
// depth-limited, control characters must be escaped, numbers outside the
// finite double range are rejected, and errors carry the byte offset.
// No external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace kgdp::io {

// Version of the machine-readable export schemas (the `schema_version`
// field on `kgd_cli json` output, certificate headers, campaign
// telemetry events, and every kgdd wire frame). Bump when any of those
// surfaces changes shape. History: v2 added solver-counter surfaces;
// v3 added the kgdd `route` method and the request-side
// `schema_version` field; v4 added the fleet `lease`/`lease.release`
// methods and the `stats` fleet block; v5 added the elastic-membership
// `fleet.join`/`fleet.leave` methods, the durable-coordinator grant
// params (`generation`, `refenced`), and their `stats` fleet counters;
// v6 added `bench_name`/`machine` metadata to BENCH_*.json records, the
// solver `kernel` block in `stats`/telemetry, and the `mt` thread-sweep
// rows in BENCH_verify.json.
// Readers stay backward compatible: artifact loaders and the daemon
// accept any version in [1, kSchemaVersion].
inline constexpr int kSchemaVersion = 6;

// Thrown by Json::parse on malformed input; `offset` is the byte
// position the parser rejected.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}
  Json(std::int64_t i) : v_(i) {}
  Json(std::uint64_t u) : v_(static_cast<std::int64_t>(u)) {}
  Json(double d) : v_(d) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(JsonArray a) : v_(std::move(a)) {}
  Json(JsonObject o) : v_(std::move(o)) {}

  std::string dump(int indent = 0) const;

  // Strict parse of a complete JSON document: trailing garbage, raw
  // control characters inside strings, invalid escapes, lone surrogates,
  // leading zeros, and nesting deeper than `max_depth` all throw
  // JsonParseError. Integers that fit int64 parse as kInt; any other
  // number parses as a finite double (out-of-range magnitudes throw).
  static Json parse(std::string_view text, int max_depth = 64);

  Type type() const { return static_cast<Type>(v_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;       // kInt only
  double as_double() const;          // kInt or kDouble
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  // Object field lookup; nullptr when this is not an object or the key
  // is absent. The pointer is invalidated by mutation of this value.
  const Json* find(const std::string& key) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      v_;
};

}  // namespace kgdp::io
