// Plain-text serialization of solution graphs (a DIMACS-flavoured format)
// so designs can be saved, exchanged, and re-verified out of process:
//
//   kgdp-graph 1
//   name <string>
//   params <n> <k>
//   nodes <N>
//   roles <N chars: i|o|p>
//   edges <M>
//   <u> <v>        (M lines, 0-based ids)
//
// plus JSON export (write-only) for external tooling.
#pragma once

#include <iosfwd>
#include <string>

#include "io/json.hpp"
#include "kgd/labeled_graph.hpp"

namespace kgdp::io {

void save_solution(std::ostream& out, const kgd::SolutionGraph& sg);
std::string save_solution_string(const kgd::SolutionGraph& sg);

// Throws std::runtime_error with a line-oriented message on malformed
// input (bad magic, inconsistent counts, out-of-range ids, self-loops,
// duplicate edges).
kgd::SolutionGraph load_solution(std::istream& in);
kgd::SolutionGraph load_solution_string(const std::string& text);

// JSON view of a solution graph (nodes with roles/names, edge list,
// parameters) for consumption outside this library.
Json solution_to_json(const kgd::SolutionGraph& sg);

}  // namespace kgdp::io
