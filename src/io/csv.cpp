#include "io/csv.hpp"

#include <stdexcept>

namespace kgdp::io {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != arity_) {
    throw std::runtime_error("CSV row arity mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << esc(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::esc(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string q = "\"";
  for (char c : s) {
    if (c == '"') q += '"';
    q += c;
  }
  q += '"';
  return q;
}

}  // namespace kgdp::io
