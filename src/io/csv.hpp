// Minimal CSV writer for benchmark output (one file per experiment so
// plots can be regenerated outside the harness).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace kgdp::io {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws
  // std::runtime_error if the file cannot be created.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void row(const std::vector<std::string>& cells);

  static std::string esc(const std::string& s);

 private:
  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace kgdp::io
