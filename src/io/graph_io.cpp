#include "io/graph_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace kgdp::io {

using kgd::Role;

namespace {

char role_char(Role r) {
  switch (r) {
    case Role::kInput: return 'i';
    case Role::kOutput: return 'o';
    case Role::kProcessor: return 'p';
  }
  return '?';
}

Role char_role(char c) {
  switch (c) {
    case 'i': return Role::kInput;
    case 'o': return Role::kOutput;
    case 'p': return Role::kProcessor;
    default:
      throw std::runtime_error(std::string("bad role character: ") + c);
  }
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("kgdp-graph parse error: " + what);
}

std::string expect_keyword(std::istream& in, const std::string& keyword) {
  std::string word;
  if (!(in >> word) || word != keyword) {
    fail("expected '" + keyword + "', got '" + word + "'");
  }
  return word;
}

}  // namespace

void save_solution(std::ostream& out, const kgd::SolutionGraph& sg) {
  out << "kgdp-graph 1\n";
  // Names may contain spaces; escape them out of existence by using the
  // rest-of-line as the name.
  out << "name " << sg.name() << '\n';
  out << "params " << sg.n() << ' ' << sg.k() << '\n';
  out << "nodes " << sg.num_nodes() << '\n';
  out << "roles ";
  for (int v = 0; v < sg.num_nodes(); ++v) out << role_char(sg.role(v));
  out << '\n';
  const auto edges = sg.graph().edges();
  out << "edges " << edges.size() << '\n';
  for (auto [u, v] : edges) out << u << ' ' << v << '\n';
}

std::string save_solution_string(const kgd::SolutionGraph& sg) {
  std::ostringstream os;
  save_solution(os, sg);
  return os.str();
}

kgd::SolutionGraph load_solution(std::istream& in) {
  std::string word;
  int version = 0;
  expect_keyword(in, "kgdp-graph");
  if (!(in >> version) || version != 1) fail("unsupported version");

  expect_keyword(in, "name");
  std::string name;
  std::getline(in >> std::ws, name);

  expect_keyword(in, "params");
  int n = 0, k = 0;
  if (!(in >> n >> k) || n < 1 || k < 1) fail("bad params");

  expect_keyword(in, "nodes");
  int num_nodes = 0;
  if (!(in >> num_nodes) || num_nodes < 1) fail("bad node count");

  expect_keyword(in, "roles");
  std::string roles_str;
  if (!(in >> roles_str) ||
      static_cast<int>(roles_str.size()) != num_nodes) {
    fail("role string length mismatch");
  }
  std::vector<Role> roles;
  roles.reserve(num_nodes);
  for (char c : roles_str) roles.push_back(char_role(c));

  expect_keyword(in, "edges");
  std::size_t num_edges = 0;
  if (!(in >> num_edges)) fail("bad edge count");

  graph::Graph g(num_nodes);
  for (std::size_t e = 0; e < num_edges; ++e) {
    int u = 0, v = 0;
    if (!(in >> u >> v)) fail("truncated edge list");
    if (u < 0 || v < 0 || u >= num_nodes || v >= num_nodes) {
      fail("edge endpoint out of range");
    }
    if (u == v) fail("self-loop");
    if (g.has_edge(u, v)) fail("duplicate edge");
    g.add_edge(u, v);
  }
  return kgd::SolutionGraph(std::move(g), std::move(roles), n, k, name);
}

kgd::SolutionGraph load_solution_string(const std::string& text) {
  std::istringstream is(text);
  return load_solution(is);
}

Json solution_to_json(const kgd::SolutionGraph& sg) {
  JsonObject root;
  root["format"] = "kgdp-graph";
  root["schema_version"] = kSchemaVersion;
  root["name"] = sg.name();
  root["n"] = sg.n();
  root["k"] = sg.k();
  JsonArray nodes;
  for (int v = 0; v < sg.num_nodes(); ++v) {
    JsonObject node;
    node["id"] = v;
    node["role"] = kgd::role_name(sg.role(v));
    node["label"] = sg.node_names()[v];
    nodes.push_back(std::move(node));
  }
  root["node_list"] = std::move(nodes);
  JsonArray edges;
  for (auto [u, v] : sg.graph().edges()) {
    edges.push_back(JsonArray{Json(u), Json(v)});
  }
  root["edge_list"] = std::move(edges);
  return Json(std::move(root));
}

}  // namespace kgdp::io
