#include "io/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace kgdp::io {

namespace {
void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}
}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  struct Visitor {
    std::string& out;
    int indent;
    int depth;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool b) const { out += b ? "true" : "false"; }
    void operator()(std::int64_t i) const { out += std::to_string(i); }
    void operator()(double d) const {
      if (std::isfinite(d)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.12g", d);
        out += buf;
      } else {
        out += "null";
      }
    }
    void operator()(const std::string& s) const { append_escaped(out, s); }
    void operator()(const JsonArray& a) const {
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        a[i].dump_to(out, indent, depth + 1);
      }
      if (!a.empty()) newline_indent(out, indent, depth);
      out += ']';
    }
    void operator()(const JsonObject& o) const {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        append_escaped(out, key);
        out += indent > 0 ? ": " : ":";
        value.dump_to(out, indent, depth + 1);
      }
      if (!o.empty()) newline_indent(out, indent, depth);
      out += '}';
    }
  };
  std::visit(Visitor{out, indent, depth}, v_);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(what, pos_);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (eof() || next() != *p) {
        fail(std::string("invalid literal (expected '") + lit + "')");
      }
    }
  }

  Json parse_value(int depth) {
    if (depth > max_depth_) fail("nesting deeper than the configured limit");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      if (next() != ':') fail("expected ':' after object key");
      skip_ws();
      // Last duplicate wins (matches JsonObject::operator[] semantics).
      obj[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json parse_array(int depth) {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      skip_ws();
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  // Decodes one \uXXXX escape's four hex digits.
  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return v;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("raw control character in string (must be escaped)");
      }
      if (c != '\\') {
        // Multibyte UTF-8 passes through byte-for-byte; the emitter does
        // the same, so escape-free text round-trips exactly.
        out += c;
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (eof() || next() != '\\' || eof() || next() != 'u') {
              fail("high surrogate not followed by \\u escape");
            }
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail("high surrogate followed by a non-low-surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    bool negative = false;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
    // Integer part: no leading zeros ("0" itself is fine).
    if (peek() == '0') {
      ++pos_;
      if (!eof() && peek() >= '0' && peek() <= '9') {
        fail("leading zero in number");
      }
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    bool integral = true;
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        fail("expected digit after decimal point");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        fail("expected digit in exponent");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      // Accumulate as uint64 so INT64_MIN parses; overflow falls back to
      // double below.
      std::uint64_t mag = 0;
      bool overflow = false;
      for (std::size_t i = negative ? 1 : 0; i < token.size(); ++i) {
        const std::uint64_t digit = static_cast<std::uint64_t>(token[i] - '0');
        if (mag > (UINT64_MAX - digit) / 10) {
          overflow = true;
          break;
        }
        mag = mag * 10 + digit;
      }
      if (!overflow) {
        const std::uint64_t limit =
            negative ? (static_cast<std::uint64_t>(INT64_MAX) + 1)
                     : static_cast<std::uint64_t>(INT64_MAX);
        if (mag <= limit) {
          const std::int64_t v =
              negative ? static_cast<std::int64_t>(-mag)
                       : static_cast<std::int64_t>(mag);
          return Json(v);
        }
      }
    }
    // Underflow quietly becomes 0/denormal; overflow to ±inf is rejected
    // (the emitter cannot represent non-finite values).
    const double d = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(d)) {
      pos_ = start;
      fail("number outside the finite double range");
    }
    return Json(d);
  }

  std::string_view text_;
  int max_depth_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* const names[] = {"null",   "bool",  "int",   "double",
                                      "string", "array", "object"};
  throw std::runtime_error(std::string("json: expected ") + want + ", got " +
                           names[static_cast<int>(got)]);
}

}  // namespace

Json Json::parse(std::string_view text, int max_depth) {
  return Parser(text, max_depth).parse_document();
}

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&v_)) return *b;
  type_error("bool", type());
}

std::int64_t Json::as_int() const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) return *i;
  type_error("int", type());
}

double Json::as_double() const {
  if (const double* d = std::get_if<double>(&v_)) return *d;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) {
    return static_cast<double>(*i);
  }
  type_error("number", type());
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&v_)) return *s;
  type_error("string", type());
}

const JsonArray& Json::as_array() const {
  if (const JsonArray* a = std::get_if<JsonArray>(&v_)) return *a;
  type_error("array", type());
}

const JsonObject& Json::as_object() const {
  if (const JsonObject* o = std::get_if<JsonObject>(&v_)) return *o;
  type_error("object", type());
}

const Json* Json::find(const std::string& key) const {
  const JsonObject* o = std::get_if<JsonObject>(&v_);
  if (o == nullptr) return nullptr;
  const auto it = o->find(key);
  return it == o->end() ? nullptr : &it->second;
}

}  // namespace kgdp::io
