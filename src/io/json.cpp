#include "io/json.hpp"

#include <cmath>
#include <cstdio>

namespace kgdp::io {

namespace {
void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}
}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  struct Visitor {
    std::string& out;
    int indent;
    int depth;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool b) const { out += b ? "true" : "false"; }
    void operator()(std::int64_t i) const { out += std::to_string(i); }
    void operator()(double d) const {
      if (std::isfinite(d)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.12g", d);
        out += buf;
      } else {
        out += "null";
      }
    }
    void operator()(const std::string& s) const { append_escaped(out, s); }
    void operator()(const JsonArray& a) const {
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        a[i].dump_to(out, indent, depth + 1);
      }
      if (!a.empty()) newline_indent(out, indent, depth);
      out += ']';
    }
    void operator()(const JsonObject& o) const {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        append_escaped(out, key);
        out += indent > 0 ? ": " : ":";
        value.dump_to(out, indent, depth + 1);
      }
      if (!o.empty()) newline_indent(out, indent, depth);
      out += '}';
    }
  };
  std::visit(Visitor{out, indent, depth}, v_);
}

}  // namespace kgdp::io
