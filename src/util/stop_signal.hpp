// Process-wide SIGINT/SIGTERM latch on the self-pipe pattern. The
// handler does only async-signal-safe work (set a sig_atomic_t flag,
// write(2) one byte to a non-blocking pipe), so both polling callers
// (`kgd_cli campaign run` checks requested() between chunks) and
// poll(2)-based callers (the kgdd event loop watches fd()) share one
// implementation. Signal dispositions are process-global state, hence
// the singleton.
#pragma once

#include <csignal>

namespace kgdp::util {

class StopSignal {
 public:
  static StopSignal& instance();

  // Installs the SIGINT and SIGTERM handlers (idempotent). Must be
  // called before relying on requested()/fd().
  void install();

  // True once any handled signal (or request_stop) fired.
  bool requested() const { return flag_ != 0; }

  // Read end of the self-pipe: becomes readable when a signal fires.
  // Level-triggered until drain() is called.
  int fd() const { return pipe_fds_[0]; }

  // Programmatic trigger taking the exact signal-handler path; used by
  // tests and by in-process daemon drains.
  void request_stop();

  // Clears the latch and empties the pipe (tests re-arming the latch).
  void reset();

  // Consumes pending pipe bytes without clearing the flag (event loops
  // that want one wakeup per signal burst).
  void drain_pipe();

 private:
  StopSignal();
  StopSignal(const StopSignal&) = delete;
  StopSignal& operator=(const StopSignal&) = delete;

  static void handler(int signum);

  volatile std::sig_atomic_t flag_ = 0;
  int pipe_fds_[2] = {-1, -1};
  bool installed_ = false;
};

}  // namespace kgdp::util
