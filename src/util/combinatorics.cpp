#include "util/combinatorics.hpp"

#include <cassert>
#include <limits>

namespace kgdp::util {

std::uint64_t binomial(unsigned n, unsigned k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t r = 1;
  for (unsigned i = 1; i <= k; ++i) {
    // r * (n-k+i) / i is always integral at this point.
    const std::uint64_t num = n - k + i;
    if (r > std::numeric_limits<std::uint64_t>::max() / num) {
      return std::numeric_limits<std::uint64_t>::max();  // saturate
    }
    r = r * num / i;
  }
  return r;
}

std::uint64_t subsets_up_to(unsigned n, unsigned k) {
  std::uint64_t total = 0;
  for (unsigned j = 0; j <= k; ++j) total += binomial(n, j);
  return total;
}

bool next_combination(std::vector<int>& comb, int n) {
  const int k = static_cast<int>(comb.size());
  int i = k - 1;
  while (i >= 0 && comb[i] == n - k + i) --i;
  if (i < 0) return false;
  ++comb[i];
  for (int j = i + 1; j < k; ++j) comb[j] = comb[j - 1] + 1;
  return true;
}

std::vector<int> unrank_combination(unsigned n, unsigned k,
                                    std::uint64_t rank) {
  std::vector<int> comb;
  unrank_combination_into(n, k, rank, comb);
  return comb;
}

void unrank_combination_into(unsigned n, unsigned k, std::uint64_t rank,
                             std::vector<int>& comb) {
  comb.clear();
  comb.reserve(k);
  int x = 0;
  for (unsigned slot = 0; slot < k; ++slot) {
    // Choose the smallest x such that the number of completions with
    // first element > x does not skip past `rank`.
    while (true) {
      const std::uint64_t block =
          binomial(n - static_cast<unsigned>(x) - 1, k - slot - 1);
      if (rank < block) break;
      rank -= block;
      ++x;
    }
    comb.push_back(x);
    ++x;
  }
}

std::uint64_t rank_combination(const std::vector<int>& comb, unsigned n) {
  const unsigned k = static_cast<unsigned>(comb.size());
  std::uint64_t rank = 0;
  int prev = -1;
  for (unsigned slot = 0; slot < k; ++slot) {
    for (int x = prev + 1; x < comb[slot]; ++x) {
      rank += binomial(n - static_cast<unsigned>(x) - 1, k - slot - 1);
    }
    prev = comb[slot];
  }
  return rank;
}

bool for_each_subset_up_to(
    unsigned n, unsigned k,
    const std::function<bool(const std::vector<int>&)>& fn) {
  std::vector<int> comb;
  if (!fn(comb)) return false;  // empty set
  for (unsigned sz = 1; sz <= k && sz <= n; ++sz) {
    comb.resize(sz);
    for (unsigned i = 0; i < sz; ++i) comb[i] = static_cast<int>(i);
    do {
      if (!fn(comb)) return false;
    } while (next_combination(comb, static_cast<int>(n)));
  }
  return true;
}

}  // namespace kgdp::util
