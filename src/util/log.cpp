#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace kgdp::util {

namespace {
std::atomic<int> g_level{-1};  // -1: uninitialised, read env on first use
std::mutex g_io_mu;

int resolve_level() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl >= 0) return lvl;
  int from_env = 1;  // default: warnings only
  if (const char* e = std::getenv("KGDP_LOG_LEVEL")) {
    from_env = std::atoi(e);
    if (from_env < 0) from_env = 0;
    if (from_env > 3) from_env = 3;
  }
  g_level.store(from_env, std::memory_order_relaxed);
  return from_env;
}

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() { return static_cast<LogLevel>(resolve_level()); }

void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard lk(g_io_mu);
  std::fprintf(stderr, "[kgdp %s] %s\n", tag(level), msg.c_str());
}

}  // namespace kgdp::util
