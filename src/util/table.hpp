// ASCII table writer used by the benchmark harness to print the
// paper-style summary rows (aligned columns, optional markdown mode).
#pragma once

#include <string>
#include <vector>

namespace kgdp::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Each cell is stringified by the caller; add_row checks arity.
  void add_row(std::vector<std::string> cells);

  // Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string num(int v);

  // Render with aligned columns; markdown=true emits a GitHub table.
  std::string to_string(bool markdown = false) const;
  void print(bool markdown = false) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kgdp::util
