#include "util/fault_inject.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/log.hpp"

namespace kgdp::util {

namespace {

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_prob(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || v < 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

}  // namespace

std::optional<FaultSpec> FaultSpec::parse(const std::string& text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) return std::nullopt;
  FaultSpec spec;
  if (!parse_u64(text.substr(0, colon), &spec.seed)) return std::nullopt;
  std::size_t pos = colon + 1;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    std::size_t sep = item.find('@');
    if (sep != std::string::npos) {
      const std::string name = item.substr(0, sep);
      std::uint64_t at = 0;
      if (!parse_u64(item.substr(sep + 1), &at)) return std::nullopt;
      const auto idx = static_cast<std::int64_t>(at);
      if (name == "crash") {
        spec.crash_at = idx;
      } else if (name == "enospc") {
        spec.enospc_at = idx;
      } else if (name == "eio") {
        spec.eio_at = idx;
      } else if (name == "short") {
        spec.short_at = idx;
      } else {
        return std::nullopt;
      }
      continue;
    }
    sep = item.find('=');
    if (sep == std::string::npos) return std::nullopt;
    const std::string name = item.substr(0, sep);
    double p = 0.0;
    if (!parse_prob(item.substr(sep + 1), &p)) return std::nullopt;
    if (name == "enospc") {
      spec.p_enospc = p;
    } else if (name == "eio") {
      spec.p_eio = p;
    } else if (name == "short") {
      spec.p_short = p;
    } else {
      return std::nullopt;
    }
  }
  return spec;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector* injector = [] {
    auto* fi = new FaultInjector();
    if (const char* env = std::getenv("KGDP_IO_FAULTS")) {
      if (auto spec = FaultSpec::parse(env)) {
        fi->arm(*spec);
        fi->set_abort_on_crash(true);
        log_warn("fault injection armed from KGDP_IO_FAULTS: ", env);
      } else {
        log_warn("ignoring malformed KGDP_IO_FAULTS: ", env);
      }
    }
    return fi;
  }();
  return *injector;
}

void FaultInjector::arm(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
  rng_ = Rng(spec.seed);
  ops_.store(0, std::memory_order_relaxed);
  crashed_.store(false, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  crashed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::set_abort_on_crash(bool abort_process) {
  std::lock_guard<std::mutex> lock(mu_);
  abort_on_crash_ = abort_process;
}

int FaultInjector::next_fault(bool is_write) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return 0;
  const auto op =
      static_cast<std::int64_t>(ops_.fetch_add(1, std::memory_order_relaxed));
  // A tripped crash is sticky: the process is "dead", so every later
  // op fails with no side effects and the on-disk state stays frozen.
  if (crashed_.load(std::memory_order_relaxed)) return EIO;
  if (spec_.crash_at >= 0 && op >= spec_.crash_at) {
    if (abort_on_crash_) {
      std::fprintf(stderr, "kgdp: KGDP_IO_FAULTS crash point at op %lld\n",
                   static_cast<long long>(op));
      std::abort();
    }
    crashed_.store(true, std::memory_order_relaxed);
    return EIO;
  }
  if (op == spec_.enospc_at) return ENOSPC;
  if (op == spec_.eio_at) return EIO;
  if (is_write && op == spec_.short_at) return kShort;
  if (spec_.p_enospc > 0.0 && rng_.next_double() < spec_.p_enospc) {
    return ENOSPC;
  }
  if (spec_.p_eio > 0.0 && rng_.next_double() < spec_.p_eio) return EIO;
  if (is_write && spec_.p_short > 0.0 &&
      rng_.next_double() < spec_.p_short) {
    return kShort;
  }
  return 0;
}

int FaultInjector::open(const char* path, int flags, unsigned mode) {
  if (enabled()) {
    const int fault = next_fault(false);
    if (fault > 0) {
      errno = fault;
      return -1;
    }
  }
  return ::open(path, flags, static_cast<mode_t>(mode));
}

ssize_t FaultInjector::write(int fd, const void* buf, std::size_t n) {
  std::size_t count = n;
  if (enabled()) {
    const int fault = next_fault(true);
    if (fault > 0) {
      errno = fault;
      return -1;
    }
    // A short write still makes progress (>= 1 byte), so retry loops
    // terminate; it just exercises them.
    if (fault == kShort && n > 1) count = n / 2;
  }
  return ::write(fd, buf, count);
}

int FaultInjector::fsync(int fd) {
  if (enabled()) {
    const int fault = next_fault(false);
    if (fault > 0) {
      errno = fault;
      return -1;
    }
  }
  return ::fsync(fd);
}

int FaultInjector::link(const char* from, const char* to) {
  if (enabled()) {
    const int fault = next_fault(false);
    if (fault > 0) {
      errno = fault;
      return -1;
    }
  }
  return ::link(from, to);
}

int FaultInjector::unlink(const char* path) {
  if (enabled()) {
    const int fault = next_fault(false);
    if (fault > 0) {
      errno = fault;
      return -1;
    }
  }
  return ::unlink(path);
}

int FaultInjector::rename(const char* from, const char* to) {
  if (enabled()) {
    const int fault = next_fault(false);
    if (fault > 0) {
      errno = fault;
      return -1;
    }
  }
  return ::rename(from, to);
}

}  // namespace kgdp::util
