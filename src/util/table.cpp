#include "util/table.hpp"

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace kgdp::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}
std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(int v) { return std::to_string(v); }

std::string Table::to_string(bool markdown) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << (markdown ? "| " : "  ");
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << (markdown ? " | " : "  ");
    }
    if (markdown) os << " |";
    os << '\n';
  };
  emit_row(headers_);
  os << (markdown ? "|" : " ");
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << (markdown ? "|" : " ");
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(bool markdown) const {
  std::fputs(to_string(markdown).c_str(), stdout);
}

}  // namespace kgdp::util
