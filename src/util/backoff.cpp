#include "util/backoff.hpp"

#include <algorithm>

namespace kgdp::util {

Backoff::Backoff(const BackoffPolicy& policy) : policy_(policy) { reset(); }

void Backoff::reset() {
  attempts_ = 0;
  elapsed_ms_ = 0;
  delay_ms_ = static_cast<double>(std::max(1, policy_.initial_delay_ms));
}

bool Backoff::next_delay(int* delay_ms) {
  ++attempts_;
  if (attempts_ > policy_.max_attempts) return false;
  int remaining = policy_.budget_ms - elapsed_ms_;
  if (remaining <= 0) return false;
  int delay = std::min(static_cast<int>(delay_ms_), policy_.max_delay_ms);
  delay = std::min(std::max(delay, 1), remaining);
  elapsed_ms_ += delay;
  delay_ms_ = std::min(delay_ms_ * policy_.multiplier,
                       static_cast<double>(policy_.max_delay_ms));
  *delay_ms = delay;
  return true;
}

}  // namespace kgdp::util
