// Deterministic pseudo-random generation (xoshiro256**), independent of
// the standard library's unspecified distributions so that fault-injection
// experiments reproduce bit-for-bit across platforms.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace kgdp::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  // Uniform in [0, bound) without modulo bias (Lemire rejection).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double next_double();

  bool next_bool(double p_true = 0.5);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // k distinct values from {0..n-1}, sorted ascending.
  std::vector<int> sample_without_replacement(int n, int k);

  // Raw xoshiro256** state, so an in-flight sampling sweep can be
  // checkpointed and resumed bit-identically (verify::CheckSession).
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace kgdp::util
