#include "util/thread_pool.hpp"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace kgdp::util {

namespace {

// Best-effort affinity: pin `handle` to one core. Failure (cgroup cpuset
// restrictions, exotic kernels) is ignored — pinning is a perf hint, the
// pool is correct either way.
void pin_to_core(std::thread& handle, unsigned core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % std::max(1u, std::thread::hardware_concurrency()), &set);
  pthread_setaffinity_np(handle.native_handle(), sizeof(set), &set);
#else
  (void)handle;
  (void)core;
#endif
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads, bool pin) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
    if (pin) pin_to_core(workers_.back(), i);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

std::size_t ThreadPool::in_flight() const {
  std::lock_guard lk(mu_);
  return in_flight_;
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::uint64_t count,
                  const std::function<void(std::uint64_t)>& fn,
                  std::atomic<bool>* stop, std::uint64_t grain) {
  if (count == 0) return;
  grain = std::max<std::uint64_t>(1, grain);
  // Shared cursor: each task claims `grain` indices at a time. The
  // cursor and fn outlive the tasks because we wait_idle() before return.
  std::atomic<std::uint64_t> cursor{0};
  const unsigned tasks = pool.thread_count();
  for (unsigned t = 0; t < tasks; ++t) {
    pool.submit([&cursor, &fn, stop, count, grain] {
      while (true) {
        if (stop && stop->load(std::memory_order_relaxed)) return;
        const std::uint64_t begin =
            cursor.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= count) return;
        const std::uint64_t end = std::min(begin + grain, count);
        for (std::uint64_t i = begin; i < end; ++i) {
          if (stop && stop->load(std::memory_order_relaxed)) return;
          fn(i);
        }
      }
    });
  }
  pool.wait_idle();
}

namespace {

// Owner pops from the front under the range's own mutex; a thief locks
// both its range and the victim's (std::scoped_lock, deadlock-free) and
// moves the victim's upper half into its own range. Indices live in
// exactly one range or one claimed chunk at all times, so each runs once.
struct StealRange {
  std::mutex mu;
  std::uint64_t next = 0;
  std::uint64_t end = 0;
};

}  // namespace

StealStats parallel_for_stealing(
    ThreadPool& pool, std::uint64_t count,
    const std::function<void(std::uint64_t, unsigned)>& fn,
    std::atomic<bool>* stop, std::uint64_t min_chunk) {
  StealStats stats;
  if (count == 0) return stats;
  min_chunk = std::max<std::uint64_t>(1, min_chunk);
  const unsigned workers = pool.thread_count();

  std::vector<StealRange> ranges(workers);
  const std::uint64_t base = count / workers;
  const std::uint64_t rem = count % workers;
  std::uint64_t cursor = 0;
  for (unsigned w = 0; w < workers; ++w) {
    ranges[w].next = cursor;
    cursor += base + (w < rem ? 1 : 0);
    ranges[w].end = cursor;
  }

  std::atomic<std::uint64_t> steals{0};
  for (unsigned w = 0; w < workers; ++w) {
    pool.submit([&ranges, &fn, &steals, stop, workers, min_chunk, w] {
      StealRange& own = ranges[w];
      while (true) {
        if (stop && stop->load(std::memory_order_relaxed)) return;
        // Claim a chunk from the front of the own range. Chunks shrink as
        // the range drains so the tail stays stealable.
        std::uint64_t begin = 0, end = 0;
        {
          std::lock_guard lk(own.mu);
          const std::uint64_t avail = own.end - own.next;
          if (avail > 0) {
            const std::uint64_t chunk =
                std::min(avail, std::max(min_chunk, avail / 4));
            begin = own.next;
            end = own.next + chunk;
            own.next = end;
          }
        }
        if (begin < end) {
          for (std::uint64_t i = begin; i < end; ++i) {
            if (stop && stop->load(std::memory_order_relaxed)) return;
            fn(i, w);
          }
          continue;
        }
        // Own range empty: steal. Only the owner refills its own range,
        // so a worker that finds nothing to steal is done for good.
        bool stole = false;
        for (unsigned d = 1; d < workers; ++d) {
          StealRange& victim = ranges[(w + d) % workers];
          std::scoped_lock lk(own.mu, victim.mu);
          const std::uint64_t avail = victim.end - victim.next;
          if (avail == 0) continue;
          // Take the upper half (everything when splitting is pointless).
          const std::uint64_t take_from =
              avail <= min_chunk ? victim.next : victim.next + avail / 2;
          own.next = take_from;
          own.end = victim.end;
          victim.end = take_from;
          steals.fetch_add(1, std::memory_order_relaxed);
          stole = true;
          break;
        }
        if (!stole) return;
      }
    });
  }
  pool.wait_idle();
  stats.steals = steals.load();
  return stats;
}

}  // namespace kgdp::util
