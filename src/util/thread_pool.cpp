#include "util/thread_pool.hpp"

#include <algorithm>

namespace kgdp::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::uint64_t count,
                  const std::function<void(std::uint64_t)>& fn,
                  std::atomic<bool>* stop, std::uint64_t grain) {
  if (count == 0) return;
  grain = std::max<std::uint64_t>(1, grain);
  // Shared cursor: each task claims `grain` indices at a time. The
  // cursor and fn outlive the tasks because we wait_idle() before return.
  std::atomic<std::uint64_t> cursor{0};
  const unsigned tasks = pool.thread_count();
  for (unsigned t = 0; t < tasks; ++t) {
    pool.submit([&cursor, &fn, stop, count, grain] {
      while (true) {
        if (stop && stop->load(std::memory_order_relaxed)) return;
        const std::uint64_t begin =
            cursor.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= count) return;
        const std::uint64_t end = std::min(begin + grain, count);
        for (std::uint64_t i = begin; i < end; ++i) {
          if (stop && stop->load(std::memory_order_relaxed)) return;
          fn(i);
        }
      }
    });
  }
  pool.wait_idle();
}

}  // namespace kgdp::util
