// Combinatorial helpers: binomial coefficients, lexicographic k-subset
// iteration, and rank/unrank of k-subsets (combinadics). Used by the
// exhaustive fault-set enumerator to shard work across threads without
// materialising the subset list.
#pragma once

#include <cstdint>
#include <vector>
#include <functional>

namespace kgdp::util {

// C(n, k) with saturation at uint64 max; exact for every value reachable
// by the fault enumerator (n <= 64-ish, k <= 8).
std::uint64_t binomial(unsigned n, unsigned k);

// Number of subsets of an n-set of size <= k: sum_{j=0..k} C(n, j).
std::uint64_t subsets_up_to(unsigned n, unsigned k);

// Advance `comb` (a strictly increasing k-subset of {0..n-1}) to its
// lexicographic successor. Returns false when `comb` was the last subset.
bool next_combination(std::vector<int>& comb, int n);

// Unrank: the `rank`-th (0-based, lexicographic) k-subset of {0..n-1}.
std::vector<int> unrank_combination(unsigned n, unsigned k,
                                    std::uint64_t rank);

// Allocation-free variant: writes the subset into `out` (cleared first,
// capacity reused). For the enumerator sweep hot path.
void unrank_combination_into(unsigned n, unsigned k, std::uint64_t rank,
                             std::vector<int>& out);

// Rank of a strictly increasing k-subset in lexicographic order.
std::uint64_t rank_combination(const std::vector<int>& comb, unsigned n);

// Invoke `fn` on every subset of {0..n-1} with size <= k, in order of
// increasing size then lexicographic. `fn` returning false stops the
// enumeration early; for_each_subset_up_to returns false iff stopped.
bool for_each_subset_up_to(unsigned n, unsigned k,
                           const std::function<bool(const std::vector<int>&)>& fn);

}  // namespace kgdp::util
