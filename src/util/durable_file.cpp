#include "util/durable_file.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/fault_inject.hpp"

namespace kgdp::util {

namespace {

constexpr char kMagic[8] = {'k', 'g', 'd', 'p', 'd', 'u', 'r', '1'};
constexpr std::uint32_t kEnvelopeVersion = 1;
// magic + u32 version + u64 payload length + payload + u32 crc.
constexpr std::size_t kHeaderBytes = sizeof kMagic + 4 + 8;
constexpr std::size_t kFrameBytes = kHeaderBytes + 4;

std::array<std::uint32_t, 256> make_crc32c_table() {
  // Reflected Castagnoli polynomial.
  constexpr std::uint32_t kPoly = 0x82F63B78u;
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

void put_u32le(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64le(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t get_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t get_u64le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::string build_envelope(std::string_view payload) {
  std::string out;
  out.reserve(kFrameBytes + payload.size());
  out.append(kMagic, sizeof kMagic);
  put_u32le(&out, kEnvelopeVersion);
  put_u64le(&out, payload.size());
  out.append(payload);
  put_u32le(&out, crc32c(payload.data(), payload.size()));
  return out;
}

[[noreturn]] void throw_io(const std::string& path, const char* op,
                           const std::string& target) {
  const int err = errno;
  throw std::runtime_error("durable write " + path + ": " + op + " " +
                           target + ": " + std::strerror(err));
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

const char* to_string(CheckpointErrorKind kind) {
  switch (kind) {
    case CheckpointErrorKind::kMissing:
      return "missing";
    case CheckpointErrorKind::kTruncated:
      return "truncated";
    case CheckpointErrorKind::kCorrupt:
      return "corrupt";
    case CheckpointErrorKind::kParse:
      return "parse";
  }
  return "unknown";
}

void durable_write_file(const std::string& path, std::string_view payload,
                        const DurableWriteOptions& opts) {
  FaultInjector& fi = FaultInjector::instance();
  const std::string tmp = path + ".tmp";
  const std::string data =
      opts.envelope ? build_envelope(payload) : std::string(payload);

  const int fd =
      fi.open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_io(path, "open", tmp);

  // Cleanup also routes through the injector: a simulated-crashed
  // process must not be able to tidy the disk behind itself.
  const auto fail = [&](const char* op, const std::string& target) {
    const int saved = errno;
    ::close(fd);
    fi.unlink(tmp.c_str());
    errno = saved;
    throw_io(path, op, target);
  };

  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = fi.write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write", tmp);
    }
    if (n == 0) {
      errno = EIO;
      fail("write", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (opts.fsync && fi.fsync(fd) != 0) fail("fsync", tmp);
  if (::close(fd) != 0) {
    fi.unlink(tmp.c_str());
    throw_io(path, "close", tmp);
  }

  if (opts.keep_backup && ::access(path.c_str(), F_OK) == 0) {
    // Best effort: preserve the outgoing generation at <path>.bak via a
    // hard link. A failure here (at worst a stale backup) never risks
    // the primary, so it is not fatal.
    const std::string bak = path + ".bak";
    fi.unlink(bak.c_str());
    fi.link(path.c_str(), bak.c_str());
  }

  if (fi.rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    fi.unlink(tmp.c_str());
    errno = saved;
    throw_io(path, "rename", tmp + " -> " + path);
  }

  if (opts.fsync) {
    // Make the rename itself durable: fsync the parent directory. The
    // primary already holds the new checkpoint at this point, so a
    // throw here reports unconfirmed durability, not a lost write.
    const std::string dir = parent_dir(path);
    const int dirfd =
        fi.open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0);
    if (dirfd < 0) throw_io(path, "open", dir);
    if (fi.fsync(dirfd) != 0) {
      const int saved = errno;
      ::close(dirfd);
      errno = saved;
      throw_io(path, "fsync", dir);
    }
    ::close(dirfd);
  }
}

PayloadResult read_durable_payload(const std::string& path) {
  PayloadResult res;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    res.status = PayloadStatus::kMissing;
    res.detail = std::string("cannot open: ") + std::strerror(errno);
    return res;
  }
  std::string bytes;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      res.status = PayloadStatus::kCorrupt;
      res.detail = std::string("read: ") + std::strerror(errno);
      return res;
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (bytes.empty()) {
    res.status = PayloadStatus::kTruncated;
    res.detail = "zero-length file";
    return res;
  }
  if (bytes.size() < sizeof kMagic ||
      std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    res.status = PayloadStatus::kOk;
    res.legacy = true;
    res.payload = std::move(bytes);
    return res;
  }
  if (bytes.size() < kFrameBytes) {
    res.status = PayloadStatus::kTruncated;
    res.detail = "envelope header truncated";
    return res;
  }
  const std::uint32_t version = get_u32le(bytes.data() + sizeof kMagic);
  if (version != kEnvelopeVersion) {
    res.status = PayloadStatus::kCorrupt;
    res.detail = "unsupported envelope version " + std::to_string(version);
    return res;
  }
  const std::uint64_t payload_len = get_u64le(bytes.data() + sizeof kMagic + 4);
  if (bytes.size() < kFrameBytes + payload_len) {
    res.status = PayloadStatus::kTruncated;
    res.detail = "payload truncated (header claims " +
                 std::to_string(payload_len) + " bytes, file holds " +
                 std::to_string(bytes.size() - kFrameBytes) + ")";
    return res;
  }
  if (bytes.size() > kFrameBytes + payload_len) {
    res.status = PayloadStatus::kCorrupt;
    res.detail = "trailing bytes after the checksum";
    return res;
  }
  const std::uint32_t stored =
      get_u32le(bytes.data() + kHeaderBytes + payload_len);
  const std::uint32_t computed =
      crc32c(bytes.data() + kHeaderBytes, payload_len);
  if (stored != computed) {
    res.status = PayloadStatus::kCorrupt;
    std::ostringstream detail;
    detail << "checksum mismatch (stored 0x" << std::hex << stored
           << ", computed 0x" << computed << ")";
    res.detail = detail.str();
    return res;
  }
  res.status = PayloadStatus::kOk;
  res.payload = bytes.substr(kHeaderBytes, payload_len);
  return res;
}

std::string quarantine_file(const std::string& path) {
  const std::string quarantine = path + ".corrupt";
  if (::rename(path.c_str(), quarantine.c_str()) != 0) return "";
  return quarantine;
}

void load_checkpoint_file(const std::string& path,
                          const std::function<void(std::istream&)>& parse,
                          CheckpointLoadInfo* info,
                          const CheckpointLoadOptions& opts) {
  const std::string candidates[2] = {path, path + ".bak"};
  const int n_candidates = opts.try_backup ? 2 : 1;
  CheckpointError first_error(CheckpointErrorKind::kMissing,
                              "checkpoint " + path + ": not found");
  bool have_error = false;
  const auto record = [&](CheckpointErrorKind kind, const std::string& what) {
    if (!have_error) {
      first_error = CheckpointError(kind, what);
      have_error = true;
    }
  };
  const auto discard = [&](const std::string& candidate) {
    if (!opts.quarantine) return;
    const std::string quarantined = quarantine_file(candidate);
    if (info != nullptr) {
      info->quarantined.push_back(quarantined.empty() ? candidate
                                                      : quarantined);
    }
  };

  for (int i = 0; i < n_candidates; ++i) {
    const std::string& candidate = candidates[i];
    PayloadResult res = read_durable_payload(candidate);
    if (res.status == PayloadStatus::kMissing) continue;
    if (res.status != PayloadStatus::kOk) {
      discard(candidate);
      record(res.status == PayloadStatus::kTruncated
                 ? CheckpointErrorKind::kTruncated
                 : CheckpointErrorKind::kCorrupt,
             "checkpoint " + candidate + ": " + res.detail);
      continue;
    }
    try {
      std::istringstream in(res.payload);
      parse(in);
      if (info != nullptr) {
        info->legacy = res.legacy;
        info->from_backup = i == 1;
      }
      return;
    } catch (const std::exception& e) {
      discard(candidate);
      record(CheckpointErrorKind::kParse,
             "checkpoint " + candidate + ": " + e.what());
    }
  }
  throw first_error;
}

std::vector<std::string> remove_stale_tmp_files(const std::string& dir) {
  std::vector<std::string> removed;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return removed;
  constexpr std::string_view kSuffix = ".kgdp.tmp";
  while (dirent* entry = ::readdir(d)) {
    const std::string_view name = entry->d_name;
    if (name.size() <= kSuffix.size() ||
        name.substr(name.size() - kSuffix.size()) != kSuffix) {
      continue;
    }
    const std::string path = dir + "/" + std::string(name);
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    if (::unlink(path.c_str()) == 0) removed.push_back(path);
  }
  ::closedir(d);
  return removed;
}

}  // namespace kgdp::util
