// Minimal leveled logger writing to stderr. Quiet by default so test and
// bench output stays clean; raise the level via set_level or the
// KGDP_LOG_LEVEL environment variable (0=off .. 3=debug).
#pragma once

#include <sstream>
#include <string>

namespace kgdp::util {

enum class LogLevel { kOff = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() >= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() >= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() >= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

}  // namespace kgdp::util
