// Dynamic fixed-capacity bitset used for fault masks, visited sets and
// Hamiltonian-path DP tables. Unlike std::vector<bool> it exposes the raw
// 64-bit words so the solvers can do word-at-a-time scans, and unlike
// std::bitset its size is a run-time value.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>
#include <cassert>
#include <bit>

namespace kgdp::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t nbits, bool value = false)
      : nbits_(nbits),
        words_((nbits + 63) / 64, value ? ~std::uint64_t{0} : 0) {
    trim();
  }

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  void resize(std::size_t nbits, bool value = false) {
    const std::size_t old_bits = nbits_;
    nbits_ = nbits;
    words_.resize((nbits + 63) / 64, value ? ~std::uint64_t{0} : 0);
    if (value && old_bits < nbits && old_bits % 64 != 0) {
      // Fill the tail of the previously-partial word.
      words_[old_bits / 64] |= ~std::uint64_t{0} << (old_bits % 64);
    }
    trim();
  }

  bool test(std::size_t i) const {
    assert(i < nbits_);
    return (words_[i / 64] >> (i % 64)) & 1u;
  }
  bool operator[](std::size_t i) const { return test(i); }

  void set(std::size_t i) {
    assert(i < nbits_);
    words_[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  void reset(std::size_t i) {
    assert(i < nbits_);
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }
  void set(std::size_t i, bool v) { v ? set(i) : reset(i); }
  void flip(std::size_t i) {
    assert(i < nbits_);
    words_[i / 64] ^= std::uint64_t{1} << (i % 64);
  }

  void reset_all() { for (auto& w : words_) w = 0; }
  void set_all() {
    for (auto& w : words_) w = ~std::uint64_t{0};
    trim();
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  bool any() const {
    for (auto w : words_) if (w) return true;
    return false;
  }
  bool none() const { return !any(); }

  // Index of the first set bit at or after `from`, or size() if none.
  std::size_t find_next(std::size_t from) const {
    if (from >= nbits_) return nbits_;
    std::size_t wi = from / 64;
    std::uint64_t w = words_[wi] & (~std::uint64_t{0} << (from % 64));
    while (true) {
      if (w) return wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      if (++wi == words_.size()) return nbits_;
      w = words_[wi];
    }
  }
  std::size_t find_first() const { return find_next(0); }

  DynamicBitset& operator|=(const DynamicBitset& o) {
    assert(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  DynamicBitset& operator&=(const DynamicBitset& o) {
    assert(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }
  DynamicBitset& operator^=(const DynamicBitset& o) {
    assert(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    return *this;
  }

  bool operator==(const DynamicBitset& o) const {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }

  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void trim() {
    if (nbits_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << (nbits_ % 64)) - 1;
    }
  }

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace kgdp::util
