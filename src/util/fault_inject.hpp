// Deterministic I/O fault injection for the durable-file layer. Every
// syscall `util::durable_write_file` makes (open/write/fsync/link/
// unlink/rename) is routed through the process-wide FaultInjector,
// which is disarmed by default — one relaxed atomic load and a
// predicted branch per call — and can be armed two ways:
//
//  * programmatically (the chaos tests): `arm(spec)` with
//    `abort_on_crash = false`, where a tripped crash point *simulates*
//    a kill — the tripping op and every later intercepted op fail with
//    EIO and no side effects, freezing the on-disk state exactly as a
//    real SIGKILL at that instruction would — and the caller observes
//    the failure as a thrown write error;
//  * via the environment (`KGDP_IO_FAULTS=seed:spec[,spec...]`), in
//    which case a crash point really does abort the process, so shell
//    drills can kill a live daemon or campaign at a chosen syscall.
//
// Spec grammar (comma-separated items after the decimal seed):
//   crash@N   simulate/abort at the Nth intercepted op (0-based)
//   enospc@N  fail exactly op N with ENOSPC (no side effect)
//   eio@N     fail exactly op N with EIO (no side effect)
//   short@N   op N, if a write, transfers only half its bytes
//   enospc=P / eio=P / short=P
//             per-op probability in [0,1], drawn from the seeded rng
//
// All faults are deterministic given (seed, spec, op sequence), so a
// failing sweep reproduces from its log line.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "util/rng.hpp"

namespace kgdp::util {

struct FaultSpec {
  std::uint64_t seed = 1;
  // One-shot faults by 0-based intercepted-op index; -1 = never.
  std::int64_t crash_at = -1;
  std::int64_t enospc_at = -1;
  std::int64_t eio_at = -1;
  std::int64_t short_at = -1;
  // Per-op probabilities in [0, 1].
  double p_enospc = 0.0;
  double p_eio = 0.0;
  double p_short = 0.0;

  // Parses "seed:spec[,spec...]" (the KGDP_IO_FAULTS grammar). Returns
  // nullopt on any malformed item.
  static std::optional<FaultSpec> parse(const std::string& text);
};

class FaultInjector {
 public:
  // Process-wide instance; the first call arms from KGDP_IO_FAULTS if
  // the variable is set and parses (with abort_on_crash = true).
  static FaultInjector& instance();

  // (Re)arms with the given spec and resets the op counter and rng.
  void arm(const FaultSpec& spec);
  void disarm();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  // True once a crash point tripped in simulate mode.
  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }
  // Intercepted ops since the last arm().
  std::uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }
  // env-armed crashes abort the process; test-armed crashes simulate.
  void set_abort_on_crash(bool abort_process);

  // Syscall shims: byte-compatible with the POSIX calls they wrap
  // (return -1 and set errno on failure). Disarmed, they pass through.
  int open(const char* path, int flags, unsigned mode);
  ssize_t write(int fd, const void* buf, std::size_t n);
  int fsync(int fd);
  int link(const char* from, const char* to);
  int unlink(const char* path);
  int rename(const char* from, const char* to);

 private:
  FaultInjector() = default;

  // Decides the fate of one intercepted op. Returns 0 to pass through,
  // an errno value to fail the op side-effect-free, or kShort to
  // truncate a write.
  static constexpr int kShort = -1;
  int next_fault(bool is_write);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<std::uint64_t> ops_{0};
  bool abort_on_crash_ = false;
  FaultSpec spec_;
  Rng rng_{1};
  std::mutex mu_;
};

}  // namespace kgdp::util
