#include "util/stop_signal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace kgdp::util {

StopSignal& StopSignal::instance() {
  static StopSignal s;
  return s;
}

StopSignal::StopSignal() {
  if (::pipe(pipe_fds_) != 0) {
    std::perror("kgdp: StopSignal pipe");
    std::abort();
  }
  for (int fd : pipe_fds_) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, ::fcntl(fd, F_GETFD) | FD_CLOEXEC);
  }
}

void StopSignal::handler(int /*signum*/) {
  StopSignal& s = instance();
  s.flag_ = 1;
  // Non-blocking write: if the pipe is full a wakeup is already pending,
  // so dropping the byte is fine. write(2) is async-signal-safe.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(s.pipe_fds_[1], &byte, 1);
}

void StopSignal::install() {
  if (installed_) return;
  installed_ = true;
  struct sigaction sa = {};
  sa.sa_handler = &StopSignal::handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

void StopSignal::request_stop() { handler(0); }

void StopSignal::drain_pipe() {
  char buf[64];
  while (::read(pipe_fds_[0], buf, sizeof buf) > 0) {
  }
}

void StopSignal::reset() {
  flag_ = 0;
  drain_pipe();
}

}  // namespace kgdp::util
