// Fixed-size worker pool with a blocking task queue plus a chunked
// parallel_for built on top of it. Results are deterministic regardless of
// thread count: workers only write to disjoint output slots and the
// early-exit flag is monotone.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kgdp::util {

class ThreadPool {
 public:
  // `threads == 0` means hardware_concurrency (at least 1). With `pin`
  // set each worker i is pinned to core i % hardware_concurrency
  // (Linux; a no-op elsewhere), which stops the scheduler migrating
  // workers mid-sweep — measurable on the multi-core batch sweep, where
  // a migration costs the worker its warm solver scratch and L1/L2.
  explicit ThreadPool(unsigned threads = 0, bool pin = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueue a task; tasks must not throw (they run under noexcept workers).
  void submit(std::function<void()> task);

  // Block until every submitted task has finished.
  void wait_idle();

  // Introspection for admission control: tasks submitted but not yet
  // picked up by a worker / submitted but not yet finished (queued +
  // running). Both are instantaneous snapshots — by the time the caller
  // acts the value may have moved — but they are exact at the moment of
  // the read and monotone within one lock hold, which is all a
  // load-shedding threshold needs.
  std::size_t queue_depth() const;
  std::size_t in_flight() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

// Run fn(i) for i in [0, count) across the pool. `fn` must be safe to call
// concurrently for distinct i. Blocks until complete. The optional `stop`
// flag allows cooperative early exit: once set, remaining indices are
// skipped (an index already started still completes).
void parallel_for(ThreadPool& pool, std::uint64_t count,
                  const std::function<void(std::uint64_t)>& fn,
                  std::atomic<bool>* stop = nullptr,
                  std::uint64_t grain = 64);

struct StealStats {
  std::uint64_t steals = 0;  // range-splitting steal operations
};

// Work-stealing variant for loops whose per-index cost is wildly uneven
// (exhaustive GD sweeps: most fault sets solve in microseconds, a few
// fall through to the DP). [0, count) is pre-split into one contiguous
// range per worker; each worker claims adaptively sized chunks from the
// front of its own range and, when empty, steals the upper half of the
// first non-empty victim range. Every index runs exactly once, on some
// worker; fn(i, worker) receives the worker id (< thread_count()) so
// callers can keep per-worker scratch state without sharing. The `stop`
// flag short-circuits as in parallel_for. Blocks until complete.
StealStats parallel_for_stealing(
    ThreadPool& pool, std::uint64_t count,
    const std::function<void(std::uint64_t, unsigned)>& fn,
    std::atomic<bool>* stop = nullptr, std::uint64_t min_chunk = 4);

}  // namespace kgdp::util
