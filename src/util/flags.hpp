// Minimal declarative flag parser for the CLI tools. Every tool used to
// hand-scan argv, which silently accepted typos and drifted out of sync
// with usage(); this registers the accepted `--name` / `--name=value`
// flags up front so unknown or malformed flags fail with a message that
// names the offender and the accepted set.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kgdp::util {

class FlagParser {
 public:
  // Declare an accepted flag. `requires_value` selects between the
  // `--name=value` form (true) and the bare `--name` switch (false).
  FlagParser& flag(const std::string& name, bool requires_value = true);

  // Parse argv[start..argc). Tokens starting with "--" must match a
  // declared flag; anything else is collected as a positional. Returns
  // false (and sets error()) on an unknown flag, a missing value, or a
  // bare value given to a switch.
  bool parse(int argc, char* const* argv, int start);

  bool has(const std::string& name) const { return values_.count(name) > 0; }
  std::string get(const std::string& name, const std::string& def = {}) const;

  // Integer value of a flag; falls back to `def` when absent. Returns
  // false (and sets error()) when present but not a number or out of
  // [min, max].
  bool get_int(const std::string& name, std::int64_t def, std::int64_t min,
               std::int64_t max, std::int64_t* out);

  const std::vector<std::string>& positionals() const { return positionals_; }
  const std::string& error() const { return error_; }

  // "i/S" shard spec (shard i of S, 0-based). False on malformed input,
  // S < 1, or i outside [0, S).
  static bool parse_shard(const std::string& spec, std::uint32_t* index,
                          std::uint32_t* count);

 private:
  std::string accepted_list() const;

  std::map<std::string, bool> declared_;  // name -> requires_value
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
  std::string error_;
};

}  // namespace kgdp::util
