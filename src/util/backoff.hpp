// Bounded exponential backoff shared by every reconnect loop in the
// tree (kgd_cli request, fleet::WorkerPool). Two independent caps: a
// maximum attempt count AND a total wall-clock budget over the sleeps
// it hands out — a retry loop bounded only by attempts can stall for
// the full geometric sum (100ms << 5 attempts is already 3.1s; callers
// that raised the cap got minutes). Deterministic on purpose (no
// jitter): chaos drills and unit tests assert exact schedules.
#pragma once

namespace kgdp::util {

struct BackoffPolicy {
  int initial_delay_ms = 100;
  double multiplier = 2.0;
  int max_delay_ms = 2000;   // per-sleep clamp
  int max_attempts = 6;      // failed attempts before giving up
  int budget_ms = 10000;     // cumulative sleep budget across the loop
};

class Backoff {
 public:
  Backoff() : Backoff(BackoffPolicy{}) {}
  explicit Backoff(const BackoffPolicy& policy);

  // Call after a failed attempt. Returns true and sets *delay_ms to the
  // next sleep (clamped so the cumulative total never exceeds
  // budget_ms), or false once either cap is exhausted — the caller
  // should stop retrying and report failure.
  bool next_delay(int* delay_ms);

  // Failed attempts recorded so far (== successful next_delay calls
  // until exhaustion, then the count that exhausted it).
  int attempts() const { return attempts_; }
  // Total sleep time handed out, for failure messages.
  int elapsed_ms() const { return elapsed_ms_; }

  // Back to the initial delay with full caps; call after a success so
  // the next outage starts fresh.
  void reset();

 private:
  BackoffPolicy policy_;
  int attempts_ = 0;
  int elapsed_ms_ = 0;
  double delay_ms_ = 0.0;
};

}  // namespace kgdp::util
