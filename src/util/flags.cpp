#include "util/flags.hpp"

#include <cerrno>
#include <cstdlib>

namespace kgdp::util {

FlagParser& FlagParser::flag(const std::string& name, bool requires_value) {
  declared_[name] = requires_value;
  return *this;
}

std::string FlagParser::accepted_list() const {
  std::string out;
  for (const auto& [name, _] : declared_) {
    if (!out.empty()) out += ", ";
    out += "--" + name;
  }
  return out;
}

bool FlagParser::parse(int argc, char* const* argv, int start) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos
                                               ? std::string::npos
                                               : eq - 2);
    const auto it = declared_.find(name);
    if (it == declared_.end()) {
      error_ = "unknown flag: " + arg + " (accepted: " + accepted_list() + ")";
      return false;
    }
    if (it->second) {  // requires a value
      if (eq == std::string::npos || eq + 1 == arg.size()) {
        error_ = "flag --" + name + " requires a value (--" + name + "=...)";
        return false;
      }
      values_[name] = arg.substr(eq + 1);
    } else {
      if (eq != std::string::npos) {
        error_ = "flag --" + name + " does not take a value";
        return false;
      }
      values_[name] = "";
    }
  }
  return true;
}

std::string FlagParser::get(const std::string& name,
                            const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool FlagParser::get_int(const std::string& name, std::int64_t def,
                         std::int64_t min, std::int64_t max,
                         std::int64_t* out) {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    *out = def;
    return true;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    error_ = "flag --" + name + ": not a number: " + it->second;
    return false;
  }
  if (v < min || v > max) {
    error_ = "flag --" + name + ": " + it->second + " out of range [" +
             std::to_string(min) + ", " + std::to_string(max) + "]";
    return false;
  }
  *out = v;
  return true;
}

bool FlagParser::parse_shard(const std::string& spec, std::uint32_t* index,
                             std::uint32_t* count) {
  const auto slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == spec.size()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long i = std::strtoll(spec.c_str(), &end, 10);
  if (errno != 0 || end != spec.c_str() + slash) return false;
  const long long s = std::strtoll(spec.c_str() + slash + 1, &end, 10);
  if (errno != 0 || *end != '\0') return false;
  if (s < 1 || i < 0 || i >= s) return false;
  *index = static_cast<std::uint32_t>(i);
  *count = static_cast<std::uint32_t>(s);
  return true;
}

}  // namespace kgdp::util
