// Crash-safe checkpoint files. The write side is raw-POSIX-fd atomic
// replacement hardened far past the old ofstream + rename idiom:
// payload framed in a CRC32C envelope, written to `<path>.tmp` with
// EINTR/short-write loops, fsync'd, hard-linked previous generation at
// `<path>.bak`, renamed into place, parent directory fsync'd — so at
// *every* syscall boundary a crash leaves `<path>` as exactly the old
// or the new checkpoint. The read side classifies failures (missing /
// truncated / corrupt / parse), quarantines bad files to
// `<name>.corrupt`, and falls back to the `.bak` generation — both
// recovery moves are opt-outs (CheckpointLoadOptions) so files the
// caller does not own can be loaded strictly read-only. Every
// syscall routes through util::FaultInjector, which is how the
// durability test sweeps a simulated crash across each of these points.
//
// Envelope layout (little-endian):
//   bytes 0..7    magic "kgdpdur1"
//   bytes 8..11   u32 format version (currently 1)
//   bytes 12..19  u64 payload length
//   payload bytes
//   trailing u32  CRC32C of the payload
// Files that do not start with the magic are accepted verbatim as
// legacy (pre-envelope) payloads.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace kgdp::util {

// CRC32C (Castagnoli), bitwise-reflected, slice-by-table. `crc` chains
// incremental calls; 0 starts a fresh checksum.
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t crc = 0);

enum class CheckpointErrorKind { kMissing, kTruncated, kCorrupt, kParse };
const char* to_string(CheckpointErrorKind kind);

// Classified checkpoint-load failure; what() carries the path and the
// specific defect so operators can act on it.
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(CheckpointErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  CheckpointErrorKind kind() const { return kind_; }

 private:
  CheckpointErrorKind kind_;
};

struct DurableWriteOptions {
  // Preserve the outgoing generation at <path>.bak (link before
  // rename) so a corrupt primary still has a good predecessor.
  bool keep_backup = true;
  // fsync the file and its parent directory. Off is only for the
  // durability bench to price the syscalls; production keeps it on.
  bool fsync = true;
  // Frame the payload in the CRC32C envelope. Off writes the payload
  // verbatim (what a legacy reader expects); also bench-only.
  bool envelope = true;
};

// Atomically replaces <path> with the enveloped payload. Throws
// std::runtime_error naming the failing operation; on a non-crash
// failure the temp file is removed and <path> is untouched.
void durable_write_file(const std::string& path, std::string_view payload,
                        const DurableWriteOptions& opts = {});

enum class PayloadStatus { kOk, kMissing, kTruncated, kCorrupt };

struct PayloadResult {
  PayloadStatus status = PayloadStatus::kMissing;
  bool legacy = false;    // no envelope: whole file taken as payload
  std::string payload;    // valid only when status == kOk
  std::string detail;     // human-readable defect when status != kOk
};

// Reads one file and validates its envelope. Never throws; a
// zero-length file classifies as truncated (the classic artifact of a
// non-durable truncate-then-crash).
PayloadResult read_durable_payload(const std::string& path);

struct CheckpointLoadInfo {
  bool legacy = false;
  bool from_backup = false;
  std::vector<std::string> quarantined;  // paths moved to *.corrupt
};

struct CheckpointLoadOptions {
  // Probe <path>.bak when the primary is unusable.
  bool try_backup = true;
  // Rename unusable candidates to <candidate>.corrupt. Both flags go
  // false for files the caller does not own (a daemon loading a
  // client-supplied path must never rename or even probe siblings of
  // a file that is not its own).
  bool quarantine = true;
};

// Loads <path>, falling back to <path>.bak: each candidate is envelope-
// checked and handed to `parse` (which throws on malformed payloads);
// candidates that fail either check are quarantined to <candidate>.corrupt.
// Backup fallback and quarantine honor `opts`. Throws CheckpointError
// describing the primary's defect when no candidate loads.
void load_checkpoint_file(const std::string& path,
                          const std::function<void(std::istream&)>& parse,
                          CheckpointLoadInfo* info = nullptr,
                          const CheckpointLoadOptions& opts = {});

// Best-effort rename of a bad checkpoint out of the load path; returns
// the quarantine path ("<path>.corrupt"), or "" if the rename failed.
std::string quarantine_file(const std::string& path);

// Removes stale atomic-write temporaries (regular files named
// *.kgdp.tmp, non-recursive) left by a crash between open and rename.
// Returns the removed paths; callers log one line per file.
std::vector<std::string> remove_stale_tmp_files(const std::string& dir);

}  // namespace kgdp::util
