#include "util/rng.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace kgdp::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs from any seed, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64()
                                                  : next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

std::vector<int> Rng::sample_without_replacement(int n, int k) {
  assert(k >= 0 && k <= n);
  // Floyd's algorithm: O(k) expected, no O(n) scratch.
  std::vector<int> picked;
  picked.reserve(k);
  for (int j = n - k; j < n; ++j) {
    const int t = static_cast<int>(next_below(static_cast<std::uint64_t>(j) + 1));
    if (std::find(picked.begin(), picked.end(), t) == picked.end()) {
      picked.push_back(t);
    } else {
      picked.push_back(j);
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace kgdp::util
