#include "fleet/checkpoint.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/durable_file.hpp"

namespace kgdp::fleet {

namespace {

constexpr const char* kMagic = "fleet-ckpt v1";

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("fleet checkpoint: " + what);
}

std::string read_block(std::istream& in, const char* keyword) {
  std::string line;
  if (!std::getline(in, line)) malformed("truncated before " +
                                         std::string(keyword));
  std::istringstream head(line);
  std::string word;
  std::uint64_t len = 0;
  if (!(head >> word >> len) || word != keyword) {
    malformed("expected '" + std::string(keyword) + " <len>', got: " + line);
  }
  std::string payload(len, '\0');
  if (len > 0 && !in.read(payload.data(), static_cast<std::streamsize>(len))) {
    malformed(std::string(keyword) + " block truncated");
  }
  if (in.get() != '\n') malformed(std::string(keyword) + " block unterminated");
  return payload;
}

void write_block(std::ostream& out, const char* keyword,
                 const std::string& payload) {
  out << keyword << ' ' << payload.size() << '\n' << payload << '\n';
}

}  // namespace

std::string FleetCheckpoint::serialize() const {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "n " << n << '\n';
  out << "k " << k << '\n';
  out << "max_faults " << max_faults << '\n';
  out << "prune " << prune << '\n';
  out << "total " << total << '\n';
  out << "generation " << generation << '\n';
  out << "leases " << leases.size() << '\n';
  for (const LeaseSnapshot& l : leases) {
    out << "lease " << l.begin << ' ' << l.end << ' ' << l.epoch << ' '
        << l.status << ' ' << l.items_done << '\n';
    write_block(out, "cursor", l.cursor);
    write_block(out, "result", l.result_text);
  }
  out << "end\n";
  return out.str();
}

FleetCheckpoint FleetCheckpoint::parse(std::istream& in) {
  FleetCheckpoint ckpt;
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    malformed("bad magic: " + line);
  }
  auto header_u64 = [&](const char* key) -> std::uint64_t {
    if (!std::getline(in, line)) malformed("truncated header");
    std::istringstream row(line);
    std::string word;
    std::uint64_t value = 0;
    if (!(row >> word >> value) || word != key) {
      malformed("expected '" + std::string(key) + " <value>', got: " + line);
    }
    return value;
  };
  ckpt.n = static_cast<int>(header_u64("n"));
  ckpt.k = static_cast<int>(header_u64("k"));
  ckpt.max_faults = static_cast<int>(header_u64("max_faults"));
  {
    if (!std::getline(in, line)) malformed("truncated header");
    std::istringstream row(line);
    std::string word;
    if (!(row >> word >> ckpt.prune) || word != "prune") {
      malformed("expected 'prune <mode>', got: " + line);
    }
  }
  ckpt.total = header_u64("total");
  ckpt.generation = header_u64("generation");
  const std::uint64_t count = header_u64("leases");
  ckpt.leases.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) malformed("truncated lease table");
    std::istringstream row(line);
    std::string word;
    LeaseSnapshot l;
    if (!(row >> word >> l.begin >> l.end >> l.epoch >> l.status >>
          l.items_done) ||
        word != "lease" || l.status < 0 || l.status > 2 || l.end < l.begin) {
      malformed("bad lease line: " + line);
    }
    l.cursor = read_block(in, "cursor");
    l.result_text = read_block(in, "result");
    if (l.status == 2 && l.result_text.empty()) {
      malformed("done lease without a result");
    }
    ckpt.leases.push_back(std::move(l));
  }
  if (!std::getline(in, line) || line != "end") malformed("missing trailer");
  return ckpt;
}

void save_fleet_checkpoint(const std::string& path,
                           const FleetCheckpoint& ckpt) {
  util::durable_write_file(path, ckpt.serialize());
}

std::optional<FleetCheckpoint> load_fleet_checkpoint(const std::string& path,
                                                     std::string* detail) {
  FleetCheckpoint ckpt;
  try {
    util::load_checkpoint_file(path, [&](std::istream& in) {
      ckpt = FleetCheckpoint::parse(in);
    });
  } catch (const util::CheckpointError& e) {
    // A missing file is the ordinary first run, not a defect worth a
    // detail line; truncation/corruption/parse failures are.
    if (detail != nullptr &&
        e.kind() != util::CheckpointErrorKind::kMissing) {
      *detail = e.what();
    }
    return std::nullopt;
  }
  return ckpt;
}

void remove_fleet_checkpoint(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
}

}  // namespace kgdp::fleet
