#include "fleet/worker_pool.hpp"

#include <chrono>
#include <condition_variable>
#include <thread>
#include <utility>

#include "net/client.hpp"

namespace kgdp::fleet {

struct WorkerPool::Worker {
  net::Endpoint endpoint;
  std::thread thread;

  mutable std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> outbox;  // serialized frames, sent in order
  bool stop = false;
  bool kicked = false;
  // Written by the worker thread, read by send()/stats() under mu.
  bool connected = false;
  bool permanently_down = false;
  std::uint64_t connects = 0;
  std::uint64_t disconnects = 0;
};

WorkerPool::WorkerPool(std::vector<net::Endpoint> endpoints,
                       WorkerPoolConfig config, Callbacks callbacks)
    : config_(config), callbacks_(std::move(callbacks)) {
  workers_.reserve(endpoints.size());
  for (net::Endpoint& ep : endpoints) {
    auto w = std::make_unique<Worker>();
    w->endpoint = std::move(ep);
    workers_.push_back(std::move(w));
  }
  for (int i = 0; i < size(); ++i) {
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { run_worker(i); });
  }
}

WorkerPool::~WorkerPool() {
  stop();
  std::vector<Worker*> snapshot;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    for (auto& w : workers_) snapshot.push_back(w.get());
  }
  for (Worker* w : snapshot) {
    if (w->thread.joinable()) w->thread.join();
  }
}

WorkerPool::Worker* WorkerPool::at(int worker) const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return workers_.at(static_cast<std::size_t>(worker)).get();
}

int WorkerPool::size() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return static_cast<int>(workers_.size());
}

int WorkerPool::add_worker(net::Endpoint ep) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (stopped_) return -1;
  auto w = std::make_unique<Worker>();
  w->endpoint = std::move(ep);
  workers_.push_back(std::move(w));
  const int index = static_cast<int>(workers_.size()) - 1;
  workers_.back()->thread = std::thread([this, index] { run_worker(index); });
  return index;
}

const net::Endpoint& WorkerPool::endpoint(int worker) const {
  return at(worker)->endpoint;
}

bool WorkerPool::send(int worker, io::Json frame) {
  Worker& w = *at(worker);
  std::lock_guard<std::mutex> lock(w.mu);
  if (!w.connected || w.stop) return false;
  w.outbox.push_back(frame.dump());
  w.cv.notify_all();
  return true;
}

void WorkerPool::kick(int worker) {
  Worker& w = *at(worker);
  std::lock_guard<std::mutex> lock(w.mu);
  w.kicked = true;
  w.cv.notify_all();
}

void WorkerPool::stop() {
  std::vector<Worker*> snapshot;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    stopped_ = true;
    for (auto& w : workers_) snapshot.push_back(w.get());
  }
  for (Worker* w : snapshot) {
    std::lock_guard<std::mutex> lock(w->mu);
    w->stop = true;
    w->cv.notify_all();
  }
}

WorkerPool::WorkerStats WorkerPool::stats(int worker) const {
  const Worker& w = *at(worker);
  std::lock_guard<std::mutex> lock(w.mu);
  WorkerStats s;
  s.connects = w.connects;
  s.disconnects = w.disconnects;
  s.connected = w.connected;
  s.permanently_down = w.permanently_down;
  return s;
}

void WorkerPool::run_worker(int worker) {
  Worker& w = *at(worker);
  util::Backoff backoff(config_.reconnect);
  while (true) {
    // --- connect phase, bounded backoff per outage ---
    std::optional<net::Client> client;
    while (true) {
      {
        std::lock_guard<std::mutex> lock(w.mu);
        if (w.stop) return;
        w.kicked = false;
      }
      std::string error;
      int connect_errno = 0;
      client = net::Client::connect(w.endpoint, &error, &connect_errno);
      if (client.has_value()) break;
      int delay_ms = 0;
      if (!backoff.next_delay(&delay_ms)) {
        {
          std::lock_guard<std::mutex> lock(w.mu);
          w.permanently_down = true;
        }
        if (callbacks_.on_down) {
          callbacks_.on_down(
              worker,
              "reconnect budget exhausted after " +
                  std::to_string(backoff.attempts()) + " attempts over " +
                  std::to_string(backoff.elapsed_ms()) + " ms: " + error +
                  " (errno " + std::to_string(connect_errno) + ")",
              /*permanent=*/true);
        }
        // Park until stop: a permanently down worker never resurrects
        // inside one run (the coordinator has re-planned around it).
        std::unique_lock<std::mutex> lock(w.mu);
        w.cv.wait(lock, [&w] { return w.stop; });
        return;
      }
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait_for(lock, std::chrono::milliseconds(delay_ms),
                    [&w] { return w.stop; });
      if (w.stop) return;
    }

    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.connected = true;
      w.outbox.clear();  // frames addressed to a previous connection
      ++w.connects;
    }
    backoff.reset();
    if (callbacks_.on_connected) callbacks_.on_connected(worker);

    // --- connected I/O loop ---
    std::string down_reason;
    while (true) {
      std::deque<std::string> to_send;
      {
        std::lock_guard<std::mutex> lock(w.mu);
        if (w.stop) return;
        if (w.kicked) {
          down_reason = "kicked (heartbeat deadline expired)";
          break;
        }
        to_send.swap(w.outbox);
      }
      bool send_failed = false;
      for (const std::string& frame : to_send) {
        std::string error;
        if (!client->send_line(frame, &error)) {
          down_reason = "send failed: " + error;
          send_failed = true;
          break;
        }
      }
      if (send_failed) break;
      net::Client::ReadResult res = client->read_frame(config_.poll_ms);
      if (res.status == net::ReadStatus::kTimeout) continue;
      if (res.status != net::ReadStatus::kOk) {
        down_reason = "read failed: " + res.error;
        break;
      }
      io::Json frame;
      try {
        frame = io::Json::parse(res.frame);
      } catch (const io::JsonParseError& e) {
        down_reason = std::string("protocol error: ") + e.what();
        break;
      }
      if (callbacks_.on_frame) callbacks_.on_frame(worker, std::move(frame));
    }

    client.reset();  // close before reporting, so a re-grant can't race us
    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.connected = false;
      w.outbox.clear();
      ++w.disconnects;
      if (w.stop) return;
    }
    if (callbacks_.on_down) {
      callbacks_.on_down(worker, down_reason, /*permanent=*/false);
    }
  }
}

}  // namespace kgdp::fleet
