#include "fleet/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "campaign/checkpoint.hpp"
#include "fault/orbit_enumerator.hpp"
#include "graph/automorphism.hpp"
#include "service/protocol.hpp"

namespace kgdp::fleet {
namespace {

std::string lease_name(std::size_t li) { return "L" + std::to_string(li); }

// Tags are "g-L<i>-<epoch>" (grant) / "r-L<i>-<epoch>" (release): error
// frames carry no lease body fields, so the tag is the only route back
// to the assignment that failed. Returns false on foreign tags.
bool parse_tag(const std::string& tag, char* op, std::size_t* li,
               std::uint64_t* epoch) {
  if (tag.size() < 6 || tag[1] != '-' || (tag[0] != 'g' && tag[0] != 'r')) {
    return false;
  }
  const std::size_t dash = tag.rfind('-');
  if (dash < 3 || tag[2] != 'L') return false;
  try {
    *li = std::stoull(tag.substr(3, dash - 3));
    *epoch = std::stoull(tag.substr(dash + 1));
  } catch (const std::exception&) {
    return false;
  }
  *op = tag[0];
  return true;
}

std::uint64_t field_u64(const io::Json& frame, const char* key,
                        std::uint64_t fallback = 0) {
  const io::Json* v = frame.find(key);
  if (v == nullptr || !v->is_int()) return fallback;
  const std::int64_t raw = v->as_int();
  return raw < 0 ? fallback : static_cast<std::uint64_t>(raw);
}

std::string field_str(const io::Json& frame, const char* key) {
  const io::Json* v = frame.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::string();
}

}  // namespace

Coordinator::Coordinator(FleetConfig config,
                         campaign::TelemetryWriter* telemetry)
    : config_(std::move(config)), telemetry_(telemetry) {
  if (config_.workers.empty()) {
    throw std::invalid_argument("fleet: no worker endpoints");
  }
  if (config_.chunk == 0) config_.chunk = 1;
  if (config_.lease_grain == 0) config_.lease_grain = 1;
  if (config_.min_steal_items < 2) config_.min_steal_items = 2;
  workers_.resize(config_.workers.size());
  WorkerPoolConfig pool_config;
  pool_config.reconnect = config_.reconnect;
  pool_config.poll_ms = config_.poll_ms;
  WorkerPool::Callbacks callbacks;
  callbacks.on_connected = [this](int w) { on_connected(w); };
  callbacks.on_frame = [this](int w, io::Json frame) {
    on_frame(w, std::move(frame));
  };
  callbacks.on_down = [this](int w, const std::string& reason,
                             bool permanent) {
    on_down(w, reason, permanent);
  };
  pool_ = std::make_unique<WorkerPool>(config_.workers, pool_config,
                                       std::move(callbacks));
}

Coordinator::~Coordinator() {
  // Stop the pool before members die: callbacks lock mu_ and touch
  // leases_, so no callback may outlive this object.
  pool_->stop();
  pool_.reset();
}

void Coordinator::emit_telemetry(const std::string& event,
                                 io::JsonObject fields) {
  std::lock_guard<std::mutex> lock(mu_);
  emit_locked(event, std::move(fields));
}

void Coordinator::emit_locked(const std::string& event,
                              io::JsonObject fields) {
  if (telemetry_ != nullptr) telemetry_->emit(event, std::move(fields));
}

InstanceOutcome Coordinator::run_instance(const kgd::SolutionGraph& sg,
                                          int n, int k, int max_faults,
                                          verify::PruneMode prune) {
  // Plan the initial partition against the same enumeration geometry the
  // workers will build (the lease ranges are orbit-slot indices, so both
  // sides must agree on num_orbits).
  const graph::AutomorphismList autos =
      prune == verify::PruneMode::kAuto ? graph::solution_automorphisms(sg)
                                        : graph::AutomorphismList{};
  const fault::OrbitEnumerator orbits(sg.num_nodes(), max_faults, autos);
  const std::uint64_t total = orbits.num_orbits();

  std::unique_lock<std::mutex> lock(mu_);
  n_ = n;
  k_ = k;
  max_faults_ = max_faults;
  prune_ = prune;
  fatal_.clear();
  stolen_ = reassigned_ = lost_ = 0;
  for (WorkerState& ws : workers_) {
    ws.active_lease = -1;
    ws.solved = 0;
    ws.leases_done = 0;
  }
  leases_.clear();
  queue_.clear();
  const std::uint64_t want =
      static_cast<std::uint64_t>(workers_.size()) * config_.lease_grain;
  const std::uint64_t planned =
      std::max<std::uint64_t>(1, std::min(want, std::max<std::uint64_t>(
                                                    total, 1)));
  leases_.resize(planned);
  for (std::uint32_t i = 0; i < planned; ++i) {
    const auto range = verify::CheckSession::shard_range(
        total, i, static_cast<std::uint32_t>(planned));
    leases_[i].begin = range.first;
    leases_[i].end = range.second;
    queue_.push_back(i);
  }
  run_active_ = true;

  while (true) {
    if (!fatal_.empty()) {
      run_active_ = false;
      const std::string why = fatal_;
      lock.unlock();
      throw std::runtime_error(why);
    }
    if (all_done_locked()) break;
    pump_locked();
    cv_.wait_for(lock, std::chrono::milliseconds(config_.poll_ms));
  }
  run_active_ = false;

  std::vector<verify::LeaseResult> parts;
  parts.reserve(leases_.size());
  for (Lease& l : leases_) {
    verify::LeaseResult part;
    part.begin = l.begin;
    part.end = l.end;
    part.result = l.result;
    parts.push_back(std::move(part));
  }

  InstanceOutcome out;
  out.leases_planned = planned;
  out.leases_stolen = stolen_;
  out.leases_reassigned = reassigned_;
  out.workers_lost = lost_;
  for (const WorkerState& ws : workers_) {
    out.per_worker_solved.push_back(ws.solved);
    out.per_worker_leases.push_back(ws.leases_done);
  }
  out.result =
      verify::merge_lease_results(sg, max_faults, prune, std::move(parts));
  io::JsonObject fields;
  fields["n"] = n;
  fields["k"] = k;
  fields["max_faults"] = max_faults;
  fields["leases"] = static_cast<std::uint64_t>(leases_.size());
  fields["stolen"] = stolen_;
  fields["reassigned"] = reassigned_;
  fields["holds"] = out.result.holds;
  emit_locked("merge_done", std::move(fields));
  return out;
}

bool Coordinator::all_done_locked() const {
  for (const Lease& l : leases_) {
    if (l.status != LeaseStatus::kDone) return false;
  }
  return true;
}

bool Coordinator::all_workers_dead_locked() const {
  for (const WorkerState& ws : workers_) {
    if (!ws.permanently_down) return false;
  }
  return true;
}

void Coordinator::pump_locked() {
  // 1. Heartbeat deadlines: an active lease whose worker has streamed
  // nothing (no accept, progress, or terminal) for the timeout is
  // presumed lost. Kick the connection — the daemon sees the close and
  // cancels its session — and requeue; the epoch bump at the next grant
  // fences any frame the old assignment still manages to emit.
  for (std::size_t li = 0; li < leases_.size(); ++li) {
    Lease& l = leases_[li];
    if (l.status != LeaseStatus::kActive) continue;
    if (l.last_frame.seconds() * 1000.0 <
        static_cast<double>(config_.heartbeat_timeout_ms)) {
      continue;
    }
    const int w = l.worker;
    io::JsonObject fields;
    fields["worker"] = pool_->endpoint(w).to_string();
    fields["reason"] = "heartbeat timeout";
    fields["lease"] = lease_name(li);
    emit_locked("worker_dead", std::move(fields));
    workers_[static_cast<std::size_t>(w)].connected = false;
    workers_[static_cast<std::size_t>(w)].active_lease = -1;
    requeue_locked(li, "heartbeat timeout");
    pool_->kick(w);
  }

  // 2. Grants: queued leases to idle connected workers.
  while (!queue_.empty()) {
    int idle = -1;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (workers_[w].connected && workers_[w].active_lease < 0) {
        idle = static_cast<int>(w);
        break;
      }
    }
    if (idle < 0) break;
    const std::size_t li = queue_.front();
    queue_.pop_front();
    if (!grant_locked(li, idle)) {
      queue_.push_front(li);
      break;
    }
  }

  // 3. Steals: queue dry, somebody idle — split the largest remainder.
  if (queue_.empty()) maybe_steal_locked();

  // 4. Liveness: every worker written off with work outstanding is the
  // one unrecoverable state.
  if (!all_done_locked() && all_workers_dead_locked()) {
    fatal_ = "fleet: all workers permanently down with leases outstanding";
  }
}

bool Coordinator::grant_locked(std::size_t li, int w) {
  Lease& l = leases_[li];
  l.epoch += 1;
  io::JsonObject params;
  params["n"] = n_;
  params["k"] = k_;
  params["max_faults"] = max_faults_;
  params["prune"] = prune_ == verify::PruneMode::kAuto ? "auto" : "off";
  params["begin"] = l.begin;
  params["end"] = l.end;
  params["chunk"] = config_.chunk;
  params["lease"] = lease_name(li);
  params["epoch"] = l.epoch;
  const bool resumed = !l.cursor.empty();
  if (resumed) params["cursor"] = l.cursor;
  io::JsonObject frame;
  frame["method"] = "lease";
  frame["params"] = io::Json(std::move(params));
  frame["schema_version"] = io::kSchemaVersion;
  frame["tag"] = "g-" + lease_name(li) + "-" + std::to_string(l.epoch);
  if (!pool_->send(w, io::Json(std::move(frame)))) {
    l.epoch -= 1;  // never went on the wire; nothing to fence
    return false;
  }
  l.status = LeaseStatus::kActive;
  l.worker = w;
  l.steal_pending = false;
  l.last_frame.reset();
  workers_[static_cast<std::size_t>(w)].active_lease = static_cast<int>(li);
  io::JsonObject fields;
  fields["lease"] = lease_name(li);
  fields["epoch"] = l.epoch;
  fields["worker"] = pool_->endpoint(w).to_string();
  fields["begin"] = l.begin;
  fields["end"] = l.end;
  fields["resumed"] = resumed;
  emit_locked("lease_granted", std::move(fields));
  return true;
}

void Coordinator::requeue_locked(std::size_t li, const char* why) {
  Lease& l = leases_[li];
  if (l.status != LeaseStatus::kActive) return;
  l.status = LeaseStatus::kQueued;
  l.worker = -1;
  l.steal_pending = false;
  ++reassigned_;
  io::JsonObject fields;
  fields["lease"] = lease_name(li);
  fields["epoch"] = l.epoch;
  fields["reason"] = why;
  fields["cursor_items"] = l.items_done;
  emit_locked("lease_requeued", std::move(fields));
  queue_.push_back(li);
  cv_.notify_all();
}

void Coordinator::maybe_steal_locked() {
  int thief = -1;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (workers_[w].connected && workers_[w].active_lease < 0) {
      thief = static_cast<int>(w);
      break;
    }
  }
  if (thief < 0) return;
  // Victim: active lease with the largest unswept remainder past the
  // overhead floor and no handshake already in flight.
  std::size_t victim = leases_.size();
  std::uint64_t best_remaining = 0;
  for (std::size_t li = 0; li < leases_.size(); ++li) {
    const Lease& l = leases_[li];
    if (l.status != LeaseStatus::kActive || l.steal_pending) continue;
    const std::uint64_t swept = l.begin + l.items_done;
    const std::uint64_t remaining = l.end > swept ? l.end - swept : 0;
    if (remaining >= config_.min_steal_items && remaining > best_remaining) {
      best_remaining = remaining;
      victim = li;
    }
  }
  if (victim == leases_.size()) return;
  Lease& l = leases_[victim];
  // Ask the victim to surrender the tail half; the split point is a
  // request, not a fact — the worker may have swept past it by the time
  // the release lands, in which case it answers applied:false and no
  // steal happens. Only an applied:true reply creates the stolen lease.
  const std::uint64_t truncate_to = l.end - best_remaining / 2;
  if (truncate_to <= l.begin + l.items_done || truncate_to >= l.end) return;
  io::JsonObject params;
  params["lease"] = lease_name(victim);
  params["epoch"] = l.epoch;
  params["truncate_to"] = truncate_to;
  io::JsonObject frame;
  frame["method"] = "lease.release";
  frame["params"] = io::Json(std::move(params));
  frame["schema_version"] = io::kSchemaVersion;
  frame["tag"] = "r-" + lease_name(victim) + "-" + std::to_string(l.epoch);
  if (!pool_->send(l.worker, io::Json(std::move(frame)))) return;
  l.steal_pending = true;
}

// Maps an inbound lease-bodied frame back to the lease it belongs to.
// *current=false for frames from a superseded epoch or a worker the
// lease no longer lives on — those are late echoes of a fenced
// assignment and must be dropped, never merged.
std::size_t Coordinator::lease_from_frame_locked(const io::Json& frame,
                                                 int w, bool* current) {
  *current = false;
  const std::string name = field_str(frame, "lease");
  if (name.size() < 2 || name[0] != 'L') return leases_.size();
  std::size_t li = 0;
  try {
    li = std::stoull(name.substr(1));
  } catch (const std::exception&) {
    return leases_.size();
  }
  if (li >= leases_.size()) return leases_.size();
  const Lease& l = leases_[li];
  *current = l.status == LeaseStatus::kActive && l.worker == w &&
             field_u64(frame, "epoch") == l.epoch;
  return li;
}

void Coordinator::on_connected(int w) {
  std::lock_guard<std::mutex> lock(mu_);
  workers_[static_cast<std::size_t>(w)].connected = true;
  cv_.notify_all();  // the pump grants on the run_instance thread
}

void Coordinator::on_down(int w, const std::string& reason, bool permanent) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkerState& ws = workers_[static_cast<std::size_t>(w)];
  ws.connected = false;
  if (permanent) ws.permanently_down = true;
  ++lost_;
  if (run_active_) {
    io::JsonObject fields;
    fields["worker"] = pool_->endpoint(w).to_string();
    fields["reason"] = reason;
    fields["permanent"] = permanent;
    emit_locked("worker_dead", std::move(fields));
  }
  if (ws.active_lease >= 0) {
    const std::size_t li = static_cast<std::size_t>(ws.active_lease);
    ws.active_lease = -1;
    if (run_active_) requeue_locked(li, "worker connection lost");
  }
  cv_.notify_all();
}

void Coordinator::on_frame(int w, io::Json frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!run_active_) return;

  const std::string type = field_str(frame, "type");
  if (type == "error") {
    // Errors carry no lease body; the tag names the failed assignment.
    char op = 0;
    std::size_t li = 0;
    std::uint64_t epoch = 0;
    if (!parse_tag(field_str(frame, "tag"), &op, &li, &epoch)) return;
    if (li >= leases_.size()) return;
    Lease& l = leases_[li];
    if (l.status != LeaseStatus::kActive || l.worker != w ||
        l.epoch != epoch) {
      return;  // stale: the assignment was already fenced or resolved
    }
    if (op == 'g') {
      // The grant was refused (draining or overloaded daemon). Requeue
      // and drop this connection: a daemon that just said no would
      // otherwise be handed the same lease again next pump, forever.
      workers_[static_cast<std::size_t>(w)].connected = false;
      workers_[static_cast<std::size_t>(w)].active_lease = -1;
      requeue_locked(li, field_str(frame, "message").c_str());
      pool_->kick(w);
    } else {
      l.steal_pending = false;  // steal aborted; the victim runs on
    }
    cv_.notify_all();
    return;
  }

  bool current = false;
  const std::size_t li = lease_from_frame_locked(frame, w, &current);
  if (li >= leases_.size() || !current) return;
  Lease& l = leases_[li];
  l.last_frame.reset();

  if (frame.find("applied") != nullptr) {
    handle_release_reply_locked(li, frame);
    return;
  }
  if (type == "accepted") return;  // admission ack; heartbeat only
  if (type == "progress") {
    l.items_done = field_u64(frame, "items_done", l.items_done);
    const std::string cursor = field_str(frame, "cursor");
    if (!cursor.empty()) l.cursor = cursor;
    return;
  }
  if (type != "result") return;

  const std::string status = field_str(frame, "status");
  if (status == "done") {
    // The certified range comes from the frame, not our bookkeeping: a
    // truncation applied worker-side after our last look shrinks it.
    l.begin = field_u64(frame, "begin", l.begin);
    l.end = field_u64(frame, "end", l.end);
    try {
      std::istringstream text(field_str(frame, "result"));
      l.result = campaign::load_result(text);
    } catch (const std::exception& e) {
      fatal_ = std::string("fleet: undecodable lease result: ") + e.what();
      cv_.notify_all();
      return;
    }
    l.status = LeaseStatus::kDone;
    l.steal_pending = false;
    WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    ws.active_lease = -1;
    ws.solved += l.result.fault_sets_solved;
    ws.leases_done += 1;
    io::JsonObject fields;
    fields["lease"] = lease_name(li);
    fields["epoch"] = l.epoch;
    fields["worker"] = pool_->endpoint(w).to_string();
    fields["begin"] = l.begin;
    fields["end"] = l.end;
    fields["solved"] = l.result.fault_sets_solved;
    emit_locked("lease_done", std::move(fields));
    cv_.notify_all();
    return;
  }
  if (status == "cancelled" || status == "drained") {
    // The worker gave the lease back (drain handoff, or a cancel we did
    // not initiate). Capture the final cursor and reschedule.
    const std::string cursor = field_str(frame, "cursor");
    if (!cursor.empty()) l.cursor = cursor;
    l.items_done = field_u64(frame, "items_done", l.items_done);
    workers_[static_cast<std::size_t>(w)].active_lease = -1;
    requeue_locked(li, status == "drained" ? "worker draining"
                                           : "worker cancelled lease");
    cv_.notify_all();
    return;
  }
}

void Coordinator::handle_release_reply_locked(std::size_t li,
                                              const io::Json& frame) {
  Lease& l = leases_[li];
  if (!l.steal_pending) return;
  l.steal_pending = false;
  const io::Json* applied = frame.find("applied");
  if (applied == nullptr || !applied->is_bool() || !applied->as_bool()) {
    return;  // the victim had already swept past the split point
  }
  // Confirmed: the victim now ends at the reply's `end`; the surrendered
  // tail becomes a fresh queued lease.
  const std::uint64_t old_end = l.end;
  const std::uint64_t new_end = field_u64(frame, "end", l.end);
  l.items_done = field_u64(frame, "items_done", l.items_done);
  const std::string cursor = field_str(frame, "cursor");
  if (!cursor.empty()) l.cursor = cursor;
  if (new_end >= old_end || new_end < l.begin) return;  // nothing ceded
  l.end = new_end;
  Lease stolen;
  stolen.begin = new_end;
  stolen.end = old_end;
  leases_.push_back(std::move(stolen));
  queue_.push_back(leases_.size() - 1);
  ++stolen_;
  io::JsonObject fields;
  fields["victim"] = lease_name(li);
  fields["lease"] = lease_name(leases_.size() - 1);
  fields["begin"] = new_end;
  fields["end"] = old_end;
  emit_locked("lease_stolen", std::move(fields));
  cv_.notify_all();
}

}  // namespace kgdp::fleet
