#include "fleet/coordinator.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "campaign/checkpoint.hpp"
#include "fault/orbit_enumerator.hpp"
#include "fleet/checkpoint.hpp"
#include "graph/automorphism.hpp"
#include "net/framing.hpp"
#include "util/durable_file.hpp"
#include "util/log.hpp"

namespace kgdp::fleet {
namespace {

std::string lease_name(std::size_t li) { return "L" + std::to_string(li); }

// Tags are "g-L<i>-<epoch>" (grant) / "r-L<i>-<epoch>" (release): error
// frames carry no lease body fields, so the tag is the only route back
// to the assignment that failed. Returns false on foreign tags.
bool parse_tag(const std::string& tag, char* op, std::size_t* li,
               std::uint64_t* epoch) {
  if (tag.size() < 6 || tag[1] != '-' || (tag[0] != 'g' && tag[0] != 'r')) {
    return false;
  }
  const std::size_t dash = tag.rfind('-');
  if (dash < 3 || tag[2] != 'L') return false;
  try {
    *li = std::stoull(tag.substr(3, dash - 3));
    *epoch = std::stoull(tag.substr(dash + 1));
  } catch (const std::exception&) {
    return false;
  }
  *op = tag[0];
  return true;
}

std::uint64_t field_u64(const io::Json& frame, const char* key,
                        std::uint64_t fallback = 0) {
  const io::Json* v = frame.find(key);
  if (v == nullptr || !v->is_int()) return fallback;
  const std::int64_t raw = v->as_int();
  return raw < 0 ? fallback : static_cast<std::uint64_t>(raw);
}

std::string field_str(const io::Json& frame, const char* key) {
  const io::Json* v = frame.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::string();
}

}  // namespace

Coordinator::Coordinator(FleetConfig config,
                         campaign::TelemetryWriter* telemetry)
    : config_(std::move(config)), telemetry_(telemetry) {
  if (config_.workers.empty() && !config_.listen.has_value()) {
    throw std::invalid_argument("fleet: no worker endpoints");
  }
  if (config_.chunk == 0) config_.chunk = 1;
  if (config_.lease_grain == 0) config_.lease_grain = 1;
  if (config_.min_steal_items < 2) config_.min_steal_items = 2;
  workers_.resize(config_.workers.size());
  WorkerPoolConfig pool_config;
  pool_config.reconnect = config_.reconnect;
  pool_config.poll_ms = config_.poll_ms;
  WorkerPool::Callbacks callbacks;
  callbacks.on_connected = [this](int w) { on_connected(w); };
  callbacks.on_frame = [this](int w, io::Json frame) {
    on_frame(w, std::move(frame));
  };
  callbacks.on_down = [this](int w, const std::string& reason,
                             bool permanent) {
    on_down(w, reason, permanent);
  };
  pool_ = std::make_unique<WorkerPool>(config_.workers, pool_config,
                                       std::move(callbacks));
  if (config_.listen.has_value()) {
    std::string error;
    listen_fd_ = net::listen_endpoint(*config_.listen, 16, &error);
    if (!listen_fd_.valid()) {
      pool_->stop();
      pool_.reset();
      throw std::runtime_error("fleet: registration listener: " + error);
    }
    if (config_.listen->kind == net::Endpoint::Kind::kTcp) {
      listen_port_ = net::local_tcp_port(listen_fd_.get());
    }
    listener_ = std::thread([this] { run_listener(); });
  }
}

Coordinator::~Coordinator() {
  // Stop the listener first (it calls pool_->add_worker and locks mu_),
  // then the pool before members die: callbacks lock mu_ and touch
  // leases_, so no callback may outlive this object.
  listen_stop_.store(true, std::memory_order_relaxed);
  if (listener_.joinable()) listener_.join();
  pool_->stop();
  pool_.reset();
}

void Coordinator::emit_telemetry(const std::string& event,
                                 io::JsonObject fields) {
  std::lock_guard<std::mutex> lock(mu_);
  emit_locked(event, std::move(fields));
}

void Coordinator::emit_locked(const std::string& event,
                              io::JsonObject fields) {
  if (telemetry_ != nullptr) telemetry_->emit(event, std::move(fields));
}

InstanceOutcome Coordinator::run_instance(const kgd::SolutionGraph& sg,
                                          int n, int k, int max_faults,
                                          verify::PruneMode prune) {
  // Plan the initial partition against the same enumeration geometry the
  // workers will build (the lease ranges are orbit-slot indices, so both
  // sides must agree on num_orbits).
  const graph::AutomorphismList autos =
      prune == verify::PruneMode::kAuto ? graph::solution_automorphisms(sg)
                                        : graph::AutomorphismList{};
  const fault::OrbitEnumerator orbits(sg.num_nodes(), max_faults, autos);
  const std::uint64_t total = orbits.num_orbits();

  std::unique_lock<std::mutex> lock(mu_);
  n_ = n;
  k_ = k;
  max_faults_ = max_faults;
  prune_ = prune;
  total_ = total;
  fatal_.clear();
  fatal_all_dead_ = false;
  stolen_ = reassigned_ = lost_ = 0;
  for (WorkerState& ws : workers_) {
    // decommissioned survives across instances: a leaver stays left.
    ws.active_lease = -1;
    ws.solved = 0;
    ws.leases_done = 0;
  }
  const std::string prune_str =
      prune == verify::PruneMode::kAuto ? "auto" : "off";
  resumed_run_ = try_resume_locked(prune_str, total);
  std::uint64_t planned = 0;
  if (resumed_run_) {
    planned = leases_.size();
  } else {
    generation_ = 0;
    leases_.clear();
    queue_.clear();
    // With a registration listener the pool may still be empty; plan
    // for at least one worker so joiners find a queue to drain.
    const std::uint64_t pool_size =
        std::max<std::uint64_t>(1, workers_.size());
    const std::uint64_t want = pool_size * config_.lease_grain;
    planned = std::max<std::uint64_t>(
        1, std::min(want, std::max<std::uint64_t>(total, 1)));
    leases_.resize(planned);
    for (std::uint32_t i = 0; i < planned; ++i) {
      const auto range = verify::CheckSession::shard_range(
          total, i, static_cast<std::uint32_t>(planned));
      leases_[i].begin = range.first;
      leases_[i].end = range.second;
      queue_.push_back(i);
    }
  }
  run_active_ = true;
  // Persist the initial (or re-fenced) table before the first grant:
  // from here on every lease-state transition rewrites it.
  checkpoint_locked();

  while (true) {
    if (!fatal_.empty()) {
      run_active_ = false;
      const std::string why = fatal_;
      const bool all_dead = fatal_all_dead_;
      lock.unlock();
      if (all_dead) throw AllWorkersDeadError(why);
      throw std::runtime_error(why);
    }
    if (all_done_locked()) break;
    pump_locked();
    cv_.wait_for(lock, std::chrono::milliseconds(config_.poll_ms));
  }
  run_active_ = false;

  std::vector<verify::LeaseResult> parts;
  parts.reserve(leases_.size());
  for (Lease& l : leases_) {
    verify::LeaseResult part;
    part.begin = l.begin;
    part.end = l.end;
    part.result = l.result;
    parts.push_back(std::move(part));
  }

  InstanceOutcome out;
  out.leases_planned = planned;
  out.leases_stolen = stolen_;
  out.leases_reassigned = reassigned_;
  out.workers_lost = lost_;
  out.resumed = resumed_run_;
  out.generation = generation_;
  for (const WorkerState& ws : workers_) {
    out.per_worker_solved.push_back(ws.solved);
    out.per_worker_leases.push_back(ws.leases_done);
  }
  out.result =
      verify::merge_lease_results(sg, max_faults, prune, std::move(parts));
  // The instance is merged; a stale lease table must never resurrect
  // it (the campaign checkpoint records the completed result).
  if (!config_.checkpoint_path.empty()) {
    remove_fleet_checkpoint(config_.checkpoint_path);
  }
  io::JsonObject fields;
  fields["n"] = n;
  fields["k"] = k;
  fields["max_faults"] = max_faults;
  fields["leases"] = static_cast<std::uint64_t>(leases_.size());
  fields["stolen"] = stolen_;
  fields["reassigned"] = reassigned_;
  fields["resumed"] = resumed_run_;
  fields["holds"] = out.result.holds;
  emit_locked("merge_done", std::move(fields));
  return out;
}

bool Coordinator::try_resume_locked(const std::string& prune_str,
                                    std::uint64_t total) {
  if (config_.checkpoint_path.empty()) return false;
  std::string why;
  const auto ckpt = load_fleet_checkpoint(config_.checkpoint_path, &why);
  if (!ckpt.has_value()) {
    if (!why.empty()) {
      util::log_warn("fleet: ignoring unusable checkpoint: ", why);
    }
    return false;
  }
  if (ckpt->n != n_ || ckpt->k != k_ || ckpt->max_faults != max_faults_ ||
      ckpt->prune != prune_str || ckpt->total != total ||
      ckpt->leases.empty()) {
    // A different instance's table: the campaign moved on. Start fresh;
    // the first write below replaces it.
    return false;
  }
  std::vector<Lease> loaded(ckpt->leases.size());
  std::deque<std::size_t> queued;
  std::uint64_t refenced = 0;
  for (std::size_t i = 0; i < ckpt->leases.size(); ++i) {
    const LeaseSnapshot& snap = ckpt->leases[i];
    Lease& l = loaded[i];
    l.begin = snap.begin;
    l.end = snap.end;
    l.epoch = snap.epoch;  // the fence floor: the next grant bumps past
    l.items_done = snap.items_done;
    l.cursor = snap.cursor;
    if (snap.status == 2) {
      try {
        std::istringstream text(snap.result_text);
        l.result = campaign::load_result(text);
      } catch (const std::exception& e) {
        util::log_warn("fleet: checkpoint result undecodable, starting "
                       "fresh: ", e.what());
        return false;
      }
      l.status = LeaseStatus::kDone;
    } else {
      // Active-at-crash leases load as queued: the assignment died with
      // the old coordinator, and the persisted cursor is the resume
      // point. The next grant re-fences at a strictly higher epoch.
      l.status = LeaseStatus::kQueued;
      l.refenced = true;
      ++refenced;
      queued.push_back(i);
    }
  }
  leases_ = std::move(loaded);
  queue_ = std::move(queued);
  generation_ = ckpt->generation + 1;
  io::JsonObject fields;
  fields["generation"] = generation_;
  fields["leases"] = static_cast<std::uint64_t>(leases_.size());
  fields["refenced"] = refenced;
  emit_locked("coordinator_resume", std::move(fields));
  return true;
}

void Coordinator::checkpoint_locked() {
  if (config_.checkpoint_path.empty() && !config_.checkpoint_observer) {
    return;
  }
  if (!run_active_) return;
  FleetCheckpoint ckpt;
  ckpt.n = n_;
  ckpt.k = k_;
  ckpt.max_faults = max_faults_;
  ckpt.prune = prune_ == verify::PruneMode::kAuto ? "auto" : "off";
  ckpt.total = total_;
  ckpt.generation = generation_;
  ckpt.leases.reserve(leases_.size());
  for (const Lease& l : leases_) {
    LeaseSnapshot snap;
    snap.begin = l.begin;
    snap.end = l.end;
    snap.epoch = l.epoch;
    snap.items_done = l.items_done;
    snap.cursor = l.cursor;
    switch (l.status) {
      case LeaseStatus::kQueued: snap.status = 0; break;
      case LeaseStatus::kActive: snap.status = 1; break;
      case LeaseStatus::kDone: {
        snap.status = 2;
        std::ostringstream text;
        campaign::save_result(text, l.result);
        snap.result_text = text.str();
        break;
      }
    }
    ckpt.leases.push_back(std::move(snap));
  }
  const std::string payload = ckpt.serialize();
  if (config_.checkpoint_observer) config_.checkpoint_observer(payload);
  if (config_.checkpoint_path.empty()) return;
  try {
    util::durable_write_file(config_.checkpoint_path, payload);
  } catch (const std::exception& e) {
    // Callers sit on worker threads that must not unwind; surface the
    // write failure as the run's fatal instead.
    fatal_ = std::string("fleet: checkpoint write failed: ") + e.what();
    cv_.notify_all();
  }
}

bool Coordinator::all_done_locked() const {
  for (const Lease& l : leases_) {
    if (l.status != LeaseStatus::kDone) return false;
  }
  return true;
}

bool Coordinator::all_workers_dead_locked() const {
  // An open registration listener means replacements can still join:
  // the fleet is starved, not dead.
  if (listen_fd_.valid()) return false;
  for (const WorkerState& ws : workers_) {
    if (!ws.permanently_down && !ws.decommissioned) return false;
  }
  return true;
}

void Coordinator::pump_locked() {
  // 1. Heartbeat deadlines: an active lease whose worker has streamed
  // nothing (no accept, progress, or terminal) for the timeout is
  // presumed lost. Kick the connection — the daemon sees the close and
  // cancels its session — and requeue; the epoch bump at the next grant
  // fences any frame the old assignment still manages to emit.
  for (std::size_t li = 0; li < leases_.size(); ++li) {
    Lease& l = leases_[li];
    if (l.status != LeaseStatus::kActive) continue;
    if (l.last_frame.seconds() * 1000.0 <
        static_cast<double>(config_.heartbeat_timeout_ms)) {
      continue;
    }
    const int w = l.worker;
    io::JsonObject fields;
    fields["worker"] = pool_->endpoint(w).to_string();
    fields["reason"] = "heartbeat timeout";
    fields["lease"] = lease_name(li);
    emit_locked("worker_dead", std::move(fields));
    workers_[static_cast<std::size_t>(w)].connected = false;
    workers_[static_cast<std::size_t>(w)].active_lease = -1;
    requeue_locked(li, "heartbeat timeout");
    pool_->kick(w);
  }

  // 2. Grants: queued leases to idle connected workers (a leaver is
  // never granted to again — it is draining toward fleet.leave).
  while (!queue_.empty()) {
    int idle = -1;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (workers_[w].connected && !workers_[w].decommissioned &&
          workers_[w].active_lease < 0) {
        idle = static_cast<int>(w);
        break;
      }
    }
    if (idle < 0) break;
    const std::size_t li = queue_.front();
    queue_.pop_front();
    if (!grant_locked(li, idle)) {
      queue_.push_front(li);
      break;
    }
  }

  // 3. Steals: queue dry, somebody idle — split the largest remainder.
  if (queue_.empty()) maybe_steal_locked();

  // 4. Liveness: every worker written off with work outstanding is the
  // one unrecoverable state.
  if (!all_done_locked() && all_workers_dead_locked()) {
    fatal_ = "fleet: all workers permanently down with leases outstanding";
    fatal_all_dead_ = true;
  }
}

bool Coordinator::grant_locked(std::size_t li, int w) {
  Lease& l = leases_[li];
  l.epoch += 1;
  io::JsonObject params;
  params["n"] = n_;
  params["k"] = k_;
  params["max_faults"] = max_faults_;
  params["prune"] = prune_ == verify::PruneMode::kAuto ? "auto" : "off";
  params["begin"] = l.begin;
  params["end"] = l.end;
  params["chunk"] = config_.chunk;
  params["lease"] = lease_name(li);
  params["epoch"] = l.epoch;
  // Durability provenance: which coordinator incarnation granted this,
  // and whether the grant re-fences a lease recovered from the crash
  // checkpoint. Workers surface both as stats counters.
  params["generation"] = generation_;
  if (l.refenced) params["refenced"] = true;
  const bool resumed = !l.cursor.empty();
  if (resumed) params["cursor"] = l.cursor;
  io::JsonObject frame;
  frame["method"] = "lease";
  frame["params"] = io::Json(std::move(params));
  frame["schema_version"] = io::kSchemaVersion;
  frame["tag"] = "g-" + lease_name(li) + "-" + std::to_string(l.epoch);
  if (!pool_->send(w, io::Json(std::move(frame)))) {
    l.epoch -= 1;  // never went on the wire; nothing to fence
    return false;
  }
  const bool refenced = l.refenced;
  l.refenced = false;  // one re-fence per recovered lease
  l.status = LeaseStatus::kActive;
  l.worker = w;
  l.steal_pending = false;
  l.last_frame.reset();
  workers_[static_cast<std::size_t>(w)].active_lease = static_cast<int>(li);
  checkpoint_locked();
  io::JsonObject fields;
  fields["lease"] = lease_name(li);
  fields["epoch"] = l.epoch;
  fields["worker"] = pool_->endpoint(w).to_string();
  fields["begin"] = l.begin;
  fields["end"] = l.end;
  fields["resumed"] = resumed;
  if (refenced) fields["refenced"] = true;
  emit_locked("lease_granted", std::move(fields));
  return true;
}

void Coordinator::requeue_locked(std::size_t li, const char* why) {
  Lease& l = leases_[li];
  if (l.status != LeaseStatus::kActive) return;
  l.status = LeaseStatus::kQueued;
  l.worker = -1;
  l.steal_pending = false;
  ++reassigned_;
  checkpoint_locked();
  io::JsonObject fields;
  fields["lease"] = lease_name(li);
  fields["epoch"] = l.epoch;
  fields["reason"] = why;
  fields["cursor_items"] = l.items_done;
  emit_locked("lease_requeued", std::move(fields));
  queue_.push_back(li);
  cv_.notify_all();
}

void Coordinator::maybe_steal_locked() {
  int thief = -1;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (workers_[w].connected && !workers_[w].decommissioned &&
        workers_[w].active_lease < 0) {
      thief = static_cast<int>(w);
      break;
    }
  }
  if (thief < 0) return;
  // Victim: active lease with the largest unswept remainder past the
  // overhead floor and no handshake already in flight.
  std::size_t victim = leases_.size();
  std::uint64_t best_remaining = 0;
  for (std::size_t li = 0; li < leases_.size(); ++li) {
    const Lease& l = leases_[li];
    if (l.status != LeaseStatus::kActive || l.steal_pending) continue;
    const std::uint64_t swept = l.begin + l.items_done;
    const std::uint64_t remaining = l.end > swept ? l.end - swept : 0;
    if (remaining >= config_.min_steal_items && remaining > best_remaining) {
      best_remaining = remaining;
      victim = li;
    }
  }
  if (victim == leases_.size()) return;
  Lease& l = leases_[victim];
  // Ask the victim to surrender the tail half; the split point is a
  // request, not a fact — the worker may have swept past it by the time
  // the release lands, in which case it answers applied:false and no
  // steal happens. Only an applied:true reply creates the stolen lease.
  const std::uint64_t truncate_to = l.end - best_remaining / 2;
  if (truncate_to <= l.begin + l.items_done || truncate_to >= l.end) return;
  io::JsonObject params;
  params["lease"] = lease_name(victim);
  params["epoch"] = l.epoch;
  params["truncate_to"] = truncate_to;
  io::JsonObject frame;
  frame["method"] = "lease.release";
  frame["params"] = io::Json(std::move(params));
  frame["schema_version"] = io::kSchemaVersion;
  frame["tag"] = "r-" + lease_name(victim) + "-" + std::to_string(l.epoch);
  if (!pool_->send(l.worker, io::Json(std::move(frame)))) return;
  l.steal_pending = true;
}

// Maps an inbound lease-bodied frame back to the lease it belongs to.
// *current=false for frames from a superseded epoch or a worker the
// lease no longer lives on — those are late echoes of a fenced
// assignment and must be dropped, never merged.
std::size_t Coordinator::lease_from_frame_locked(const io::Json& frame,
                                                 int w, bool* current) {
  *current = false;
  const std::string name = field_str(frame, "lease");
  if (name.size() < 2 || name[0] != 'L') return leases_.size();
  std::size_t li = 0;
  try {
    li = std::stoull(name.substr(1));
  } catch (const std::exception&) {
    return leases_.size();
  }
  if (li >= leases_.size()) return leases_.size();
  const Lease& l = leases_[li];
  *current = l.status == LeaseStatus::kActive && l.worker == w &&
             field_u64(frame, "epoch") == l.epoch;
  return li;
}

void Coordinator::on_connected(int w) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkerState& ws = workers_[static_cast<std::size_t>(w)];
  ws.connected = true;
  if (ws.announce_join) {
    // Tell the daemon it is now fleet-attached (it counts the join and
    // acks with a result frame the lease router drops harmlessly).
    ws.announce_join = false;
    io::JsonObject frame;
    frame["method"] = "fleet.join";
    frame["params"] = io::Json(io::JsonObject{});
    frame["schema_version"] = io::kSchemaVersion;
    frame["tag"] = "j-w" + std::to_string(w);
    pool_->send(w, io::Json(std::move(frame)));
  }
  cv_.notify_all();  // the pump grants on the run_instance thread
}

void Coordinator::on_down(int w, const std::string& reason, bool permanent) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkerState& ws = workers_[static_cast<std::size_t>(w)];
  ws.connected = false;
  if (permanent) ws.permanently_down = true;
  ++lost_;
  if (run_active_) {
    io::JsonObject fields;
    fields["worker"] = pool_->endpoint(w).to_string();
    fields["reason"] = reason;
    fields["permanent"] = permanent;
    emit_locked("worker_dead", std::move(fields));
  }
  if (ws.active_lease >= 0) {
    const std::size_t li = static_cast<std::size_t>(ws.active_lease);
    ws.active_lease = -1;
    if (run_active_) requeue_locked(li, "worker connection lost");
  }
  cv_.notify_all();
}

void Coordinator::on_frame(int w, io::Json frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!run_active_) return;

  const std::string type = field_str(frame, "type");
  if (type == "error") {
    // Errors carry no lease body; the tag names the failed assignment.
    char op = 0;
    std::size_t li = 0;
    std::uint64_t epoch = 0;
    if (!parse_tag(field_str(frame, "tag"), &op, &li, &epoch)) return;
    if (li >= leases_.size()) return;
    Lease& l = leases_[li];
    if (l.status != LeaseStatus::kActive || l.worker != w ||
        l.epoch != epoch) {
      return;  // stale: the assignment was already fenced or resolved
    }
    if (op == 'g') {
      // The grant was refused (draining or overloaded daemon). Requeue
      // and drop this connection: a daemon that just said no would
      // otherwise be handed the same lease again next pump, forever.
      workers_[static_cast<std::size_t>(w)].connected = false;
      workers_[static_cast<std::size_t>(w)].active_lease = -1;
      requeue_locked(li, field_str(frame, "message").c_str());
      pool_->kick(w);
    } else {
      l.steal_pending = false;  // steal aborted; the victim runs on
    }
    cv_.notify_all();
    return;
  }

  bool current = false;
  const std::size_t li = lease_from_frame_locked(frame, w, &current);
  if (li >= leases_.size() || !current) return;
  Lease& l = leases_[li];
  l.last_frame.reset();

  if (frame.find("applied") != nullptr) {
    handle_release_reply_locked(li, frame);
    return;
  }
  if (type == "accepted") return;  // admission ack; heartbeat only
  if (type == "progress") {
    l.items_done = field_u64(frame, "items_done", l.items_done);
    const std::string cursor = field_str(frame, "cursor");
    if (!cursor.empty()) l.cursor = cursor;
    // The cursor is the resume point after a coordinator crash — it
    // must be durable before the next chunk can be considered streamed.
    checkpoint_locked();
    return;
  }
  if (type != "result") return;

  const std::string status = field_str(frame, "status");
  if (status == "done") {
    // The certified range comes from the frame, not our bookkeeping: a
    // truncation applied worker-side after our last look shrinks it.
    l.begin = field_u64(frame, "begin", l.begin);
    l.end = field_u64(frame, "end", l.end);
    try {
      std::istringstream text(field_str(frame, "result"));
      l.result = campaign::load_result(text);
    } catch (const std::exception& e) {
      fatal_ = std::string("fleet: undecodable lease result: ") + e.what();
      cv_.notify_all();
      return;
    }
    l.status = LeaseStatus::kDone;
    l.steal_pending = false;
    WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    ws.active_lease = -1;
    ws.solved += l.result.fault_sets_solved;
    ws.leases_done += 1;
    checkpoint_locked();
    io::JsonObject fields;
    fields["lease"] = lease_name(li);
    fields["epoch"] = l.epoch;
    fields["worker"] = pool_->endpoint(w).to_string();
    fields["begin"] = l.begin;
    fields["end"] = l.end;
    fields["solved"] = l.result.fault_sets_solved;
    emit_locked("lease_done", std::move(fields));
    cv_.notify_all();
    return;
  }
  if (status == "cancelled" || status == "drained") {
    // The worker gave the lease back (drain handoff, or a cancel we did
    // not initiate). Capture the final cursor and reschedule.
    const std::string cursor = field_str(frame, "cursor");
    if (!cursor.empty()) l.cursor = cursor;
    l.items_done = field_u64(frame, "items_done", l.items_done);
    workers_[static_cast<std::size_t>(w)].active_lease = -1;
    requeue_locked(li, status == "drained" ? "worker draining"
                                           : "worker cancelled lease");
    cv_.notify_all();
    return;
  }
}

// --- elastic membership: the registration listener -------------------
//
// Workers attach to a running coordinator by dialing config_.listen and
// sending `fleet.join {endpoint}` (their own serving endpoint, which
// the coordinator dials back through the pool — the transport stays
// dial-out, so a joiner needs no inbound path to the workers).
// `fleet.leave {endpoint}` decommissions a member: it is never granted
// to again, and the daemon is told to drain its lease sessions at the
// next chunk boundary — the drained cursor hands the work back without
// losing a slot, exactly like a confirmed steal. Registration frames
// ride the same v5 envelope as every other kgdd method.

void Coordinator::run_listener() {
  while (!listen_stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    net::Fd conn(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!conn.valid()) continue;
    // Registrations are rare and tiny; serving them one at a time off
    // the accept loop keeps the listener a hundred lines, not a server.
    serve_registration(std::move(conn));
  }
}

void Coordinator::serve_registration(net::Fd conn) {
  net::FrameReader reader(1u << 16);
  char buf[4096];
  int idle_ticks = 0;
  while (!listen_stop_.load(std::memory_order_relaxed) && idle_ticks < 20) {
    while (auto frame = reader.next()) {
      idle_ticks = 0;
      service::Envelope env;
      env.req_id = "c" + std::to_string(++registrations_);
      io::Json reply;
      if (service::parse_envelope(*frame, &env, &reply)) {
        std::lock_guard<std::mutex> lock(mu_);
        reply = handle_registration_locked(env);
      }
      std::string wire = reply.dump();
      wire += '\n';
      std::size_t sent = 0;
      while (sent < wire.size()) {
        const ssize_t n = ::send(conn.get(), wire.data() + sent,
                                 wire.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) continue;
          return;
        }
        sent += static_cast<std::size_t>(n);
      }
    }
    if (reader.oversized()) return;
    pollfd pfd{conn.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) {
      ++idle_ticks;
      continue;
    }
    const ssize_t n = ::read(conn.get(), buf, sizeof buf);
    if (n == 0) return;  // peer done
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    reader.append(buf, static_cast<std::size_t>(n));
  }
}

io::Json Coordinator::handle_registration_locked(
    const service::Envelope& env) {
  const io::Json* params = env.params();
  const std::string ep_text =
      params != nullptr ? field_str(*params, "endpoint") : std::string();
  if (env.method == "fleet.join") {
    const auto ep = net::Endpoint::parse(ep_text);
    if (!ep.has_value()) {
      return env.error(service::ErrorCode::kBadRequest,
                       "fleet.join requires params.endpoint "
                       "(unix:PATH or tcp:HOST:PORT)");
    }
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!workers_[w].decommissioned &&
          pool_->endpoint(static_cast<int>(w)).to_string() ==
              ep->to_string()) {
        io::JsonObject body;
        body["joined"] = true;
        body["worker"] = static_cast<int>(w);
        body["already_member"] = true;
        return env.result(std::move(body));
      }
    }
    const int w = pool_->add_worker(*ep);
    if (w < 0) {
      return env.error(service::ErrorCode::kShuttingDown,
                       "coordinator is stopping");
    }
    workers_.resize(static_cast<std::size_t>(w) + 1);
    workers_[static_cast<std::size_t>(w)].announce_join = true;
    io::JsonObject fields;
    fields["worker"] = ep->to_string();
    emit_locked("worker_joined", std::move(fields));
    cv_.notify_all();  // a joiner is immediately grantable
    io::JsonObject body;
    body["joined"] = true;
    body["worker"] = w;
    return env.result(std::move(body));
  }
  if (env.method == "fleet.leave") {
    int found = -1;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!workers_[w].decommissioned &&
          pool_->endpoint(static_cast<int>(w)).to_string() == ep_text) {
        found = static_cast<int>(w);
        break;
      }
    }
    if (found < 0) {
      return env.error(service::ErrorCode::kNotFound,
                       "no such fleet member: " + ep_text);
    }
    workers_[static_cast<std::size_t>(found)].decommissioned = true;
    // Ask the daemon to drain its lease sessions at the next chunk
    // boundary; the drained terminal frames hand every cursor back and
    // the leases requeue to the survivors.
    io::JsonObject frame;
    frame["method"] = "fleet.leave";
    frame["params"] = io::Json(io::JsonObject{});
    frame["schema_version"] = io::kSchemaVersion;
    frame["tag"] = "l-w" + std::to_string(found);
    pool_->send(found, io::Json(std::move(frame)));
    io::JsonObject fields;
    fields["worker"] = ep_text;
    emit_locked("worker_left", std::move(fields));
    cv_.notify_all();
    io::JsonObject body;
    body["leaving"] = true;
    body["worker"] = found;
    return env.result(std::move(body));
  }
  return env.error(service::ErrorCode::kUnknownMethod,
                   "the registration listener speaks fleet.join and "
                   "fleet.leave only");
}

void Coordinator::handle_release_reply_locked(std::size_t li,
                                              const io::Json& frame) {
  Lease& l = leases_[li];
  if (!l.steal_pending) return;
  l.steal_pending = false;
  const io::Json* applied = frame.find("applied");
  if (applied == nullptr || !applied->is_bool() || !applied->as_bool()) {
    return;  // the victim had already swept past the split point
  }
  // Confirmed: the victim now ends at the reply's `end`; the surrendered
  // tail becomes a fresh queued lease.
  const std::uint64_t old_end = l.end;
  const std::uint64_t new_end = field_u64(frame, "end", l.end);
  l.items_done = field_u64(frame, "items_done", l.items_done);
  const std::string cursor = field_str(frame, "cursor");
  if (!cursor.empty()) l.cursor = cursor;
  if (new_end >= old_end || new_end < l.begin) return;  // nothing ceded
  l.end = new_end;
  Lease stolen;
  stolen.begin = new_end;
  stolen.end = old_end;
  leases_.push_back(std::move(stolen));
  queue_.push_back(leases_.size() - 1);
  ++stolen_;
  checkpoint_locked();
  io::JsonObject fields;
  fields["victim"] = lease_name(li);
  fields["lease"] = lease_name(leases_.size() - 1);
  fields["begin"] = new_end;
  fields["end"] = old_end;
  emit_locked("lease_stolen", std::move(fields));
  cv_.notify_all();
}

}  // namespace kgdp::fleet
