// Connection keeper for the certification fleet: one thread per remote
// kgdd worker owning a blocking net::Client (connect, send, read all on
// that thread — the client is not thread-safe), with bounded-backoff
// reconnect (util::Backoff) across outages. The pool is transport only:
// it surfaces connects, inbound frames, and losses through callbacks
// and queues outbound frames per worker; every scheduling decision
// (grants, steals, reassignment, heartbeat deadlines) lives in
// fleet::Coordinator, which serializes the callbacks under its own
// lock. Callbacks fire on worker threads.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "net/socket.hpp"
#include "util/backoff.hpp"

namespace kgdp::fleet {

struct WorkerPoolConfig {
  // Reconnect schedule per outage (reset after each successful
  // connect); exhausting it marks the worker permanently down.
  util::BackoffPolicy reconnect;
  // Read/mailbox tick: bounds how stale a kick or outbound frame can go
  // unnoticed, and the latency of stop().
  int poll_ms = 100;
};

class WorkerPool {
 public:
  struct Callbacks {
    // All invoked on the worker's own thread; the receiver serializes.
    std::function<void(int worker)> on_connected;
    std::function<void(int worker, io::Json frame)> on_frame;
    // The connection dropped. permanent=false: an outage, the thread is
    // about to retry with backoff. permanent=true: the reconnect budget
    // is spent and the thread has parked for good.
    std::function<void(int worker, const std::string& reason,
                       bool permanent)> on_down;
  };

  WorkerPool(std::vector<net::Endpoint> endpoints, WorkerPoolConfig config,
             Callbacks callbacks);
  ~WorkerPool();  // stop() + join

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const;
  const net::Endpoint& endpoint(int worker) const;

  // Grows the pool live (elastic membership): appends a worker for `ep`
  // and starts its connection thread. Indices are stable — a worker is
  // never removed, only decommissioned by the coordinator — so the
  // returned index is the worker's identity for its lifetime. Returns
  // -1 after stop().
  int add_worker(net::Endpoint ep);

  // Queues one frame on worker w's connection (its thread sends in
  // order). False when the worker is not currently connected — queued
  // frames never outlive a connection, so the caller must re-plan, not
  // retry blindly.
  bool send(int worker, io::Json frame);

  // Asks worker w's thread to drop its connection at the next tick —
  // the coordinator's heartbeat-timeout teeth. The thread reconnects
  // with a fresh backoff; on_down(transient) fires as for any outage.
  void kick(int worker);

  // Stops every thread (current connections close; no more callbacks
  // after join). Idempotent; also run by the destructor.
  void stop();

  struct WorkerStats {
    std::uint64_t connects = 0;
    std::uint64_t disconnects = 0;
    bool connected = false;
    bool permanently_down = false;
  };
  WorkerStats stats(int worker) const;

 private:
  struct Worker;
  void run_worker(int worker);
  Worker* at(int worker) const;

  WorkerPoolConfig config_;
  Callbacks callbacks_;
  // Guards the vector's structure (add_worker appends live). Worker
  // objects themselves are behind stable unique_ptrs and carry their
  // own mutex, so callers hold pool_mu_ only to resolve an index.
  mutable std::mutex pool_mu_;
  bool stopped_ = false;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace kgdp::fleet
