// Fleet coordinator: splits one exhaustive certification (and, via
// campaign::run_campaign_fleet, whole (n, k) grids) into shard leases —
// contiguous orbit-slot ranges fenced by (lease id, epoch) — dispatched
// to remote kgdd workers through the `lease`/`lease.release` wire
// methods, then merges the completed slices bit-identically to a
// single-node run (verify::merge_lease_results).
//
// Control model: WorkerPool threads own the sockets and deliver frames/
// connects/losses as callbacks; the coordinator serializes everything
// under one mutex and makes every scheduling decision (grant, steal,
// requeue, heartbeat kick) in run_instance's pump loop, so the policy
// reads as straight-line code:
//
//   * a dead or silent worker's lease is requeued to resume from its
//     last streamed cursor, under a bumped epoch that fences any frame
//     the old assignment might still emit;
//   * when the queue is dry and a worker sits idle, the lease with the
//     largest unswept remainder is split: the victim truncates at the
//     next chunk boundary (confirmed via lease.release applied:true —
//     never assumed) and the stolen tail becomes a fresh lease;
//   * a worker whose reconnect budget is exhausted is written off; the
//     run fails only when every worker is gone with work outstanding.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/telemetry.hpp"
#include "fleet/worker_pool.hpp"
#include "kgd/labeled_graph.hpp"
#include "service/protocol.hpp"
#include "util/timer.hpp"
#include "verify/check_session.hpp"

namespace kgdp::fleet {

// Thrown by run_instance when every worker is permanently written off
// (or has left) with leases outstanding and no registration listener is
// accepting replacements — the one unrecoverable fleet state. Distinct
// from std::runtime_error so callers can map it to a documented exit
// code instead of a bare throw.
class AllWorkersDeadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FleetConfig {
  std::vector<net::Endpoint> workers;
  // Worker-side items per advance (progress/cursor cadence).
  std::uint64_t chunk = 512;
  // Target initial leases per worker; finer grain = cheaper recovery
  // and better load balance, at more per-lease overhead.
  std::uint64_t lease_grain = 4;
  // Never split a remainder smaller than this (steal overhead floor).
  std::uint64_t min_steal_items = 256;
  // An active lease whose worker streams nothing for this long is
  // presumed lost: the connection is kicked and the lease requeued.
  int heartbeat_timeout_ms = 10000;
  // Pump/worker-thread tick.
  int poll_ms = 100;
  // Per-outage reconnect schedule (exhaustion = worker written off).
  util::BackoffPolicy reconnect;
  // Durable lease-table checkpoint (fleet/checkpoint.hpp), written on
  // every lease-state transition; empty disables. A coordinator
  // restarted on the same path resumes the in-flight instance from it:
  // done leases keep their results, unfinished leases re-enter the
  // queue at their last streamed cursor and are re-fenced at a
  // strictly higher epoch on their next grant.
  std::string checkpoint_path;
  // Test hook: observes every serialized checkpoint payload (called
  // under the coordinator mutex, also when checkpoint_path is empty).
  // Each payload is exactly the state a SIGKILL after that transition
  // would leave on disk, so a resume sweep can replay them all.
  std::function<void(const std::string&)> checkpoint_observer;
  // Registration listener for elastic membership: workers attach with
  // `fleet.join` / detach with `fleet.leave` (schema v5). With a
  // listener the worker list may start empty, and the coordinator
  // waits for joiners instead of declaring the fleet dead.
  std::optional<net::Endpoint> listen;
};

// Per-instance accounting alongside the merged verdict.
struct InstanceOutcome {
  verify::CheckResult result;
  std::uint64_t leases_planned = 0;
  std::uint64_t leases_stolen = 0;      // successful steal splits
  std::uint64_t leases_reassigned = 0;  // requeues of orphaned leases
  std::uint64_t workers_lost = 0;       // connection losses observed
  // Crash-resume: true when the instance was rebuilt from a durable
  // checkpoint; generation counts coordinator incarnations (0 = first).
  bool resumed = false;
  std::uint64_t generation = 0;
  // Per worker (configured + joined): solver invocations / leases done.
  std::vector<std::uint64_t> per_worker_solved;
  std::vector<std::uint64_t> per_worker_leases;
};

class Coordinator {
 public:
  // Telemetry (nullable) receives lease_granted / lease_stolen /
  // worker_dead / merge_done JSONL events; all emits are serialized on
  // the coordinator mutex. Throws std::invalid_argument on an empty
  // worker list.
  explicit Coordinator(FleetConfig config,
                       campaign::TelemetryWriter* telemetry = nullptr);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Certifies GD(sg, max_faults) across the fleet: plans the lease
  // partition (or resumes it from the durable checkpoint), drives it to
  // completion (stealing and reassigning as workers slow down or die),
  // and returns the merged result — bit-identical to run_check on one
  // node with the same prune mode. Throws AllWorkersDeadError when
  // every worker is permanently down with leases outstanding and no
  // listener is open for joiners. Workers persist across calls.
  InstanceOutcome run_instance(const kgd::SolutionGraph& sg, int n, int k,
                               int max_faults, verify::PruneMode prune);

  // Serialized telemetry emit for callers sharing the writer (the
  // fleet campaign runner), so their events never interleave a
  // callback's mid-line.
  void emit_telemetry(const std::string& event, io::JsonObject fields);

  int worker_count() const { return pool_->size(); }
  const net::Endpoint& worker_endpoint(int w) const {
    return pool_->endpoint(w);
  }

  // The registration listener's resolved TCP port (ephemeral binds),
  // -1 without a TCP listener.
  int listen_tcp_port() const { return listen_port_; }

 private:
  enum class LeaseStatus { kQueued, kActive, kDone };

  struct Lease {
    std::uint64_t begin = 0, end = 0;  // end shrinks when stolen from
    std::uint64_t epoch = 0;           // bumped on every grant
    LeaseStatus status = LeaseStatus::kQueued;
    int worker = -1;
    std::string cursor;  // last streamed; the reassignment point
    std::uint64_t items_done = 0;
    bool steal_pending = false;  // a truncation handshake is in flight
    // Loaded from a crash checkpoint and not yet re-granted: the next
    // grant re-fences it (strictly higher epoch) and says so.
    bool refenced = false;
    verify::CheckResult result;  // valid once kDone
    util::Timer last_frame;      // heartbeat age while active
  };

  struct WorkerState {
    bool connected = false;
    bool permanently_down = false;
    // fleet.leave accepted: drains at its next chunk boundary and is
    // never granted to again (indices stay stable; no erasure).
    bool decommissioned = false;
    // Joined live; announce fleet.join to the daemon when connected.
    bool announce_join = false;
    int active_lease = -1;
    std::uint64_t solved = 0;
    std::uint64_t leases_done = 0;
  };

  // WorkerPool callbacks (worker threads; lock mu_).
  void on_connected(int w);
  void on_frame(int w, io::Json frame);
  void on_down(int w, const std::string& reason, bool permanent);

  // Registration listener (elastic membership).
  void run_listener();
  void serve_registration(net::Fd conn);
  io::Json handle_registration_locked(const service::Envelope& env);

  // All _locked helpers require mu_ held.
  void pump_locked();
  bool grant_locked(std::size_t li, int w);
  void requeue_locked(std::size_t li, const char* why);
  void maybe_steal_locked();
  void handle_release_reply_locked(std::size_t li, const io::Json& frame);
  void emit_locked(const std::string& event, io::JsonObject fields);
  std::size_t lease_from_frame_locked(const io::Json& frame, int w,
                                      bool* current);
  bool all_done_locked() const;
  bool all_workers_dead_locked() const;
  // Serializes the lease table and writes it durably (+ observer).
  // Failures set fatal_ instead of throwing: callers sit on worker
  // threads that must not unwind.
  void checkpoint_locked();
  // Rebuilds the lease table from the checkpoint; false = start fresh.
  bool try_resume_locked(const std::string& prune_str, std::uint64_t total);

  FleetConfig config_;
  campaign::TelemetryWriter* telemetry_;
  std::unique_ptr<WorkerPool> pool_;

  // Registration listener (only when config_.listen is set).
  net::Fd listen_fd_;
  std::thread listener_;
  std::atomic<bool> listen_stop_{false};
  int listen_port_ = -1;
  std::uint64_t registrations_ = 0;  // req-id source for replies

  std::mutex mu_;
  std::condition_variable cv_;
  bool run_active_ = false;
  std::string fatal_;
  bool fatal_all_dead_ = false;
  // Grant parameters of the live instance.
  int n_ = 0, k_ = 0, max_faults_ = 0;
  verify::PruneMode prune_ = verify::PruneMode::kAuto;
  std::uint64_t total_ = 0;       // num_orbits (checkpoint identity)
  std::uint64_t generation_ = 0;  // coordinator incarnations
  bool resumed_run_ = false;
  std::vector<Lease> leases_;       // lease id "L<index>"
  std::deque<std::size_t> queue_;   // grantable lease indices
  std::vector<WorkerState> workers_;
  std::uint64_t stolen_ = 0, reassigned_ = 0, lost_ = 0;
};

}  // namespace kgdp::fleet
