// Durable coordinator state: the lease table, epochs, and last-streamed
// cursors of the in-flight fleet instance, serialized on every
// lease-state transition through util::durable_file (CRC32C envelope,
// atomic replace, .bak generation — the same machinery as every other
// checkpoint in the tree). A coordinator SIGKILLed mid-instance and
// restarted on the same path rebuilds its lease table from here,
// re-fences every unfinished lease at a strictly higher epoch (the
// persisted epoch is the fence floor; the next grant bumps past it),
// and resumes each lease from its persisted cursor instead of
// restarting the instance — the merged verdict stays bit-identical to
// an uninterrupted run.
//
// Format: line-oriented header (identity + generation), then one
// `lease` line per lease followed by length-prefixed `cursor` and
// `result` blocks (both payloads embed newlines — cursors are
// save_cursor text, results are campaign::save_result text with
// bit-cast doubles), closed by `end`. The identity fields bind the
// checkpoint to one (n, k, max_faults, prune, num_orbits) instance; a
// mismatch means the campaign moved on and the file is ignored.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace kgdp::fleet {

struct LeaseSnapshot {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t epoch = 0;
  std::uint64_t items_done = 0;
  // 0 = queued, 1 = active (loads as queued: the assignment died with
  // the coordinator), 2 = done.
  int status = 0;
  std::string cursor;       // last streamed; the resume point
  std::string result_text;  // campaign::save_result text once done
};

struct FleetCheckpoint {
  // Instance identity — all five must match for a resume to apply.
  int n = 0;
  int k = 0;
  int max_faults = 0;
  std::string prune;  // "auto" / "off"
  std::uint64_t total = 0;  // num_orbits the lease ranges tile

  // Coordinator incarnations over this instance: 0 for the first run,
  // +1 per resume. Grants carry it so workers can count resumes.
  std::uint64_t generation = 0;

  std::vector<LeaseSnapshot> leases;

  std::string serialize() const;
  // Throws std::runtime_error on any malformed payload.
  static FleetCheckpoint parse(std::istream& in);
};

// Atomic, fsync'd, enveloped write to `path` (+ .bak generation).
void save_fleet_checkpoint(const std::string& path,
                           const FleetCheckpoint& ckpt);

// Loads `path` (falling back to `.bak`, quarantining corrupt files).
// Returns nullopt when no usable checkpoint exists — a fresh start,
// not an error; *detail (optional) says why when empty-handed.
std::optional<FleetCheckpoint> load_fleet_checkpoint(
    const std::string& path, std::string* detail = nullptr);

// Removes the checkpoint and its .bak once the instance is merged —
// a stale table must never resurrect leases of a finished instance.
void remove_fleet_checkpoint(const std::string& path);

}  // namespace kgdp::fleet
