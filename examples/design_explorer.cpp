// Design-space explorer: sweeps the (n, k) grid the paper covers and
// prints, for each point, the construction used, node/edge cost, max
// processor degree vs the provable lower bound, and (for small
// instances) the exhaustive GD verdict. Optionally dumps a figure's DOT.
//
//   $ ./design_explorer [max_n] [max_k]
//   $ ./design_explorer dot 22 4 > g22_4.dot
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/enumerator.hpp"
#include "kgd/bounds.hpp"
#include "kgd/factory.hpp"
#include "util/table.hpp"
#include "verify/checker.hpp"

using namespace kgdp;

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "dot") == 0) {
    const auto sg = kgd::build_solution(std::atoi(argv[2]),
                                        std::atoi(argv[3]));
    if (!sg) {
      std::fprintf(stderr, "unsupported (n, k)\n");
      return 1;
    }
    std::fputs(sg->to_dot().c_str(), stdout);
    return 0;
  }

  const int max_n = argc > 1 ? std::atoi(argv[1]) : 12;
  const int max_k = argc > 2 ? std::atoi(argv[2]) : 5;

  util::Table table({"n", "k", "construction", "nodes", "edges",
                     "max deg", "bound", "optimal", "GD check"});
  for (int k = 1; k <= max_k; ++k) {
    for (int n = 1; n <= max_n; ++n) {
      if (!kgd::is_supported(n, k)) {
        table.add_row({util::Table::num(n), util::Table::num(k),
                       "(not covered by the paper)", "-", "-", "-", "-",
                       "-", "-"});
        continue;
      }
      const auto sg = kgd::build_solution(n, k);
      const int bound = kgd::max_degree_lower_bound(n, k);
      const int deg = sg->max_processor_degree();
      // Exhaustive checking is cheap only while the fault-set space is
      // small; sample beyond that.
      std::string verdict;
      const std::uint64_t space =
          fault::FaultEnumerator(sg->num_nodes(), k).total();
      if (space <= 300000) {
        const auto res = verify::run_check(*sg, verify::CheckRequest::exhaustive(k));
        verdict = res.holds ? "exhaustive: OK" : "exhaustive: FAIL";
      } else {
        const auto res = verify::run_check(*sg, verify::CheckRequest::sampled(k, 500, 42));
        verdict = res.holds ? "sampled: OK" : "sampled: FAIL";
      }
      table.add_row({util::Table::num(n), util::Table::num(k),
                     kgd::construction_method(n, k),
                     util::Table::num(sg->num_nodes()),
                     util::Table::num(sg->graph().num_edges()),
                     util::Table::num(deg), util::Table::num(bound),
                     deg == bound ? "yes" : "NO", verdict});
    }
  }
  table.print();
  return 0;
}
