// Domain scenario from the paper's introduction: a real-time video/DSP
// stream (low-pass filter -> 2:1 subsample -> rescale -> quantize ->
// delta encode) mapped onto a parallel machine whose interconnect is a
// k-gracefully-degradable graph. Nodes die mid-stream; the machine remaps
// and the output stays sample-for-sample identical to a fault-free run.
//
//   $ ./video_pipeline [n] [k] [chunks]
#include <cstdio>
#include <cstdlib>

#include "kgd/factory.hpp"
#include "sim/machine.hpp"
#include "sim/stages_dsp.hpp"
#include "util/rng.hpp"

using namespace kgdp;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 10;
  const int k = argc > 2 ? std::atoi(argv[2]) : 3;
  const int chunks = argc > 3 ? std::atoi(argv[3]) : 8;

  auto sg = kgd::build_solution(n, k);
  if (!sg) {
    std::fprintf(stderr, "unsupported (n, k)\n");
    return 1;
  }

  sim::PipelineMachine machine(*sg, sim::make_video_pipeline());
  sim::StageList reference = sim::make_video_pipeline();
  util::Rng rng(99);

  std::printf("machine: %s, %d processors, pipeline latency %.0f cycles, "
              "throughput %.1f samples/kcycle\n\n",
              sg->name().c_str(), sg->num_processors(),
              machine.stats().pipeline_latency_cycles,
              machine.stats().throughput());

  std::size_t mismatches = 0;
  int faults_injected = 0;
  for (int c = 0; c < chunks; ++c) {
    const sim::Chunk sig = sim::make_test_signal(4096, 1000 + c);
    const sim::Chunk want = sim::run_sequential(reference, sig);
    const sim::Chunk got = machine.process(sig);
    if (got != want) ++mismatches;
    std::printf("chunk %d: %zu samples in -> %zu out  [faults so far: %d, "
                "output %s]\n",
                c, sig.size(), got.size(), faults_injected,
                got == want ? "MATCHES reference" : "DIVERGED");

    // Fault storm: kill a random node after every other chunk while
    // budget remains.
    if (c % 2 == 1 && faults_injected < k) {
      const int victim =
          static_cast<int>(rng.next_below(sg->num_nodes()));
      if (machine.inject_fault(victim)) {
        ++faults_injected;
        const bool ok = machine.reconfigure();
        std::printf("  !! node %s failed -> remap %s "
                    "(pipeline now %d processors, latency %.0f cycles)\n",
                    sg->node_names()[victim].c_str(),
                    ok ? "succeeded" : "FAILED",
                    ok ? machine.pipeline().num_processors() : 0,
                    ok ? machine.stats().pipeline_latency_cycles : 0.0);
        if (!ok) return 1;
      }
    }
  }

  std::printf("\n%d faults tolerated, %zu/%d chunks diverged, "
              "%d reconfigurations\n",
              faults_injected, mismatches, chunks,
              machine.stats().reconfigurations);
  return mismatches == 0 ? 0 : 1;
}
