// Quickstart: build a k-gracefully-degradable pipeline graph, break it,
// and watch it reconfigure around the faults using every healthy
// processor.
//
//   $ ./quickstart [n] [k]
#include <cstdio>
#include <cstdlib>

#include "kgd/factory.hpp"
#include "verify/checker.hpp"
#include "verify/pipeline_solver.hpp"

using namespace kgdp;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const int k = argc > 2 ? std::atoi(argv[2]) : 2;

  // 1. Build the paper's construction for (n, k).
  const auto sg = kgd::build_solution(n, k);
  if (!sg) {
    std::fprintf(stderr, "(n=%d, k=%d) is outside the paper's coverage\n",
                 n, k);
    return 1;
  }
  std::printf("built %s: %d nodes, %zu edges, max processor degree %d\n",
              sg->name().c_str(), sg->num_nodes(), sg->graph().num_edges(),
              sg->max_processor_degree());
  std::printf("construction: %s\n\n",
              kgd::construction_method(n, k).c_str());

  // 2. Fault-free pipeline: uses all n + k processors.
  verify::PipelineSolver solver;
  auto out = solver.solve(*sg, kgd::FaultSet::none(sg->num_nodes()));
  std::printf("fault-free pipeline (%d processors):\n  %s\n\n",
              out.pipeline->num_processors(),
              out.pipeline->to_string(*sg).c_str());

  // 3. Kill k nodes — a processor, an input terminal, whatever fits —
  //    and reconfigure. Every healthy processor is still used.
  std::vector<int> faults;
  faults.push_back(sg->processors()[0]);
  if (k >= 2) faults.push_back(sg->inputs()[0]);
  for (int extra = 2; extra < k; ++extra) {
    faults.push_back(sg->processors()[extra]);
  }
  const kgd::FaultSet fs(sg->num_nodes(), faults);
  std::printf("injecting faults %s\n", fs.to_string().c_str());
  out = solver.solve(*sg, fs);
  if (out.status != verify::SolveStatus::kFound) {
    std::printf("no pipeline survives (unexpected!)\n");
    return 1;
  }
  std::printf("reconfigured pipeline (%d processors):\n  %s\n\n",
              out.pipeline->num_processors(),
              out.pipeline->to_string(*sg).c_str());

  // 4. Certify the graph exhaustively: EVERY fault set up to k works.
  const auto res = verify::run_check(*sg, verify::CheckRequest::exhaustive(k));
  std::printf("exhaustive certification over %llu fault sets: %s\n",
              static_cast<unsigned long long>(res.fault_sets_checked),
              res.holds ? "k-gracefully-degradable" : "FAILED");
  return res.holds ? 0 : 1;
}
