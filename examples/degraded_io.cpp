// Degraded-I/O scenario: combines the merged-terminal model (fault-free
// I/O devices, §3's second model) with link faults. A deployment where
// the single camera and single display are trusted but processors and
// links fail: processors die, links die, and the pipeline keeps using
// every healthy processor.
//
//   $ ./degraded_io [n] [k]
#include <cstdio>
#include <cstdlib>

#include "fault/edge_faults.hpp"
#include "kgd/factory.hpp"
#include "kgd/merge.hpp"
#include "util/rng.hpp"
#include "verify/pipeline_solver.hpp"

using namespace kgdp;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 10;
  const int k = argc > 2 ? std::atoi(argv[2]) : 3;

  const auto base = kgd::build_solution(n, k);
  if (!base) {
    std::fprintf(stderr, "unsupported (n, k)\n");
    return 1;
  }
  const kgd::SolutionGraph machine = kgd::merge_terminals(*base);
  std::printf("merged machine: %d processors, single input 'i' (degree "
              "%d), single output 'o' (degree %d)\n\n",
              machine.num_processors(),
              machine.graph().degree(machine.inputs()[0]),
              machine.graph().degree(machine.outputs()[0]));

  util::Rng rng(7);
  // Scenario 1: processor failures only (the merged model's contract).
  {
    std::vector<int> dead;
    const auto procs = machine.processors();
    for (int i = 0; i < k; ++i) {
      dead.push_back(procs[rng.next_below(procs.size())]);
    }
    const kgd::FaultSet fs(machine.num_nodes(), dead);
    const auto out = verify::find_pipeline(machine, fs);
    std::printf("scenario 1 — %d processor faults %s: %s\n", fs.size(),
                fs.to_string().c_str(),
                out.status == verify::SolveStatus::kFound ? "pipeline OK"
                                                          : "FAILED");
    if (out.pipeline) {
      std::printf("  %s\n\n", out.pipeline->to_string(machine).c_str());
    }
  }

  // Scenario 2: a dead link next to the input device. Direct rerouting
  // avoids the link without sacrificing the neighbor processor.
  {
    const auto in_node = machine.inputs()[0];
    const auto first_neighbor = machine.graph().neighbors(in_node)[0];
    const fault::EdgeList dead_links = {{std::min(in_node, first_neighbor),
                                         std::max(in_node, first_neighbor)}};
    const auto direct = fault::find_pipeline_with_edge_faults(
        machine, dead_links, kgd::FaultSet::none(machine.num_nodes()));
    std::printf("scenario 2 — input link (%s-%s) dead:\n",
                machine.node_names()[in_node].c_str(),
                machine.node_names()[first_neighbor].c_str());
    std::printf("  direct reroute: %s (%d processors in service)\n",
                direct ? "pipeline OK" : "FAILED",
                direct ? direct->num_processors() : 0);
    const kgd::FaultSet reduction =
        fault::cover_edge_faults(machine, dead_links);
    const auto reduced = verify::find_pipeline(machine, reduction);
    std::printf("  Hayes reduction (sacrifice %s): %s (%d processors)\n\n",
                reduction.to_string().c_str(),
                reduced.status == verify::SolveStatus::kFound ? "pipeline OK"
                                                              : "FAILED",
                reduced.pipeline ? reduced.pipeline->num_processors() : 0);
  }

  // Scenario 3: mixed storm up to the design budget.
  {
    const auto procs = machine.processors();
    std::vector<int> dead = {procs[0]};
    const auto edges = machine.graph().edges();
    const fault::EdgeList dead_links = {edges[rng.next_below(edges.size())]};
    const kgd::FaultSet fs(machine.num_nodes(), dead);
    const auto out =
        fault::find_pipeline_with_edge_faults(machine, dead_links, fs);
    std::printf("scenario 3 — 1 processor + 1 link dead: %s\n",
                out ? "pipeline OK" : "FAILED");
    if (out) {
      std::printf("  %d of %d processors in service\n",
                  out->num_processors(), machine.num_processors());
    }
    return out ? 0 : 1;
  }
}
