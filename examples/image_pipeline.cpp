// Image-processing scenario from the paper's introduction (§1 cites
// pipelined Hough/Radon architectures for image and CT processing): a
// stream of edge-detected frames flows through a smoothing + Hough
// pipeline mapped onto a gracefully degradable machine. Frames keep
// arriving while processors die; line detections stay identical to the
// fault-free reference.
//
//   $ ./image_pipeline [n] [k] [frames]
#include <cstdio>
#include <cstdlib>

#include "kgd/factory.hpp"
#include "sim/machine.hpp"
#include "sim/stages_dsp.hpp"
#include "sim/stages_image.hpp"
#include "util/rng.hpp"

using namespace kgdp;

namespace {

sim::StageList make_image_pipeline(int width, int height) {
  sim::StageList stages;
  // Binarize-ish front end, then the Hough voting stage.
  stages.push_back(std::make_unique<sim::Rescale>(1.0, 0.0));
  stages.push_back(
      std::make_unique<sim::HoughTransform>(width, height, 8, 2));
  return stages;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const int k = argc > 2 ? std::atoi(argv[2]) : 2;
  const int frames = argc > 3 ? std::atoi(argv[3]) : 6;
  const int width = 32, height = 32;

  auto sg = kgd::build_solution(n, k);
  if (!sg) {
    std::fprintf(stderr, "unsupported (n, k)\n");
    return 1;
  }
  sim::PipelineMachine machine(*sg, make_image_pipeline(width, height));
  sim::StageList reference = make_image_pipeline(width, height);
  util::Rng rng(31);

  std::printf("machine %s: %d processors, %zu-stage image pipeline, "
              "%dx%d frames\n\n",
              sg->name().c_str(), sg->num_processors(), std::size_t{2},
              width, height);

  int faults = 0;
  int mismatches = 0;
  for (int f = 0; f < frames; ++f) {
    // Synthetic frame: one random line.
    const int y0 = static_cast<int>(rng.next_below(height));
    const int y1 = static_cast<int>(rng.next_below(height));
    const sim::Chunk frame =
        sim::make_line_image(width, height, 0, y0, width - 1, y1);

    const sim::Chunk want = sim::run_sequential(reference, frame);
    const sim::Chunk got = machine.process(frame);
    const bool match = got == want;
    mismatches += !match;

    std::printf("frame %d: ", f);
    for (std::size_t p = 0; p + 2 < got.size(); p += 3) {
      std::printf("line(theta=%d rho=%d votes=%d) ",
                  static_cast<int>(got[p]), static_cast<int>(got[p + 1]),
                  static_cast<int>(got[p + 2]));
    }
    std::printf("[%s]\n", match ? "matches reference" : "DIVERGED");

    if (f % 2 == 1 && faults < k) {
      const int victim = static_cast<int>(rng.next_below(sg->num_nodes()));
      if (machine.inject_fault(victim)) {
        ++faults;
        if (!machine.reconfigure()) {
          std::printf("remap failed!\n");
          return 1;
        }
        std::printf("  !! %s failed; remapped onto %d processors\n",
                    sg->node_names()[victim].c_str(),
                    machine.pipeline().num_processors());
      }
    }
  }
  std::printf("\n%d faults, %d/%d frames diverged\n", faults, mismatches,
              frames);
  return mismatches == 0 ? 0 : 1;
}
