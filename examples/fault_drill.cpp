// Fault drill: stress a construction with every fault policy the library
// models — uniform, processor-targeted, terminal-targeted, adversarial
// high-degree — plus the merged-terminal model where I/O devices are
// fault-free. Reports time-to-reconfigure for each drill.
//
//   $ ./fault_drill [n] [k] [drills]
#include <cstdio>
#include <cstdlib>

#include "fault/fault_model.hpp"
#include "kgd/factory.hpp"
#include "kgd/merge.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "verify/pipeline_solver.hpp"

using namespace kgdp;

namespace {

const char* policy_name(fault::FaultPolicy p) {
  switch (p) {
    case fault::FaultPolicy::kUniform: return "uniform";
    case fault::FaultPolicy::kProcessorsOnly: return "processors-only";
    case fault::FaultPolicy::kTerminalsFirst: return "terminals-first";
    case fault::FaultPolicy::kHighDegreeFirst: return "high-degree-first";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  const int k = argc > 2 ? std::atoi(argv[2]) : 4;
  const int drills = argc > 3 ? std::atoi(argv[3]) : 200;

  const auto sg = kgd::build_solution(n, k);
  if (!sg) {
    std::fprintf(stderr, "unsupported (n, k)\n");
    return 1;
  }
  std::printf("drilling %s with %d random fault sets per policy\n\n",
              sg->name().c_str(), drills);

  util::Table table({"policy", "drills", "survived", "avg reconfig (us)",
                     "max reconfig (us)"});
  verify::PipelineSolver solver;
  for (const auto policy :
       {fault::FaultPolicy::kUniform, fault::FaultPolicy::kProcessorsOnly,
        fault::FaultPolicy::kTerminalsFirst,
        fault::FaultPolicy::kHighDegreeFirst}) {
    util::Rng rng(7 + static_cast<int>(policy));
    int survived = 0;
    double total_us = 0, max_us = 0;
    for (int d = 0; d < drills; ++d) {
      const int f = static_cast<int>(rng.next_below(k + 1));
      const kgd::FaultSet fs = fault::draw_faults(*sg, f, policy, rng);
      util::Timer t;
      const auto out = solver.solve(*sg, fs);
      const double us = t.micros();
      total_us += us;
      max_us = std::max(max_us, us);
      survived += (out.status == verify::SolveStatus::kFound);
    }
    table.add_row({policy_name(policy), util::Table::num(drills),
                   util::Table::num(survived),
                   util::Table::num(total_us / drills, 1),
                   util::Table::num(max_us, 1)});
  }
  table.print();

  // The merged-terminal model: I/O devices fault-free, processors not.
  const kgd::SolutionGraph merged = kgd::merge_terminals(*sg);
  util::Rng rng(31);
  int survived = 0;
  for (int d = 0; d < drills; ++d) {
    const kgd::FaultSet fs = fault::draw_faults(
        merged, k, fault::FaultPolicy::kProcessorsOnly, rng);
    survived += (solver.solve(merged, fs).status ==
                 verify::SolveStatus::kFound);
  }
  std::printf("\nmerged-terminal model (single fault-free i/o devices): "
              "%d/%d processor-fault drills survived\n",
              survived, drills);
  std::printf("merged input degree: %d (k+1 = %d is the minimum "
              "possible)\n",
              merged.graph().degree(merged.inputs()[0]), k + 1);
  return survived == drills ? 0 : 1;
}
