// Offline synthesis of the §3.3 special solutions (Figures 10-13).
// Re-discovers each graph with the library's searcher, certifies it with
// the exhaustive GD checker, and prints a C++ literal ready to embed in
// src/kgd/special.cpp. Usage: synthesize_special [n k]...
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "kgd/bounds.hpp"
#include "util/timer.hpp"
#include "verify/checker.hpp"
#include "verify/synthesis.hpp"

using namespace kgdp;

namespace {

void emit(const kgd::SolutionGraph& sg) {
  const int P = sg.num_processors();
  std::vector<int> att_in(P, 0), att_out(P, 0);
  std::vector<std::pair<int, int>> proc_edges;
  // Processors come first (assemble() builds them that way); assert it.
  for (int v = 0; v < P; ++v) {
    if (sg.role(v) != kgd::Role::kProcessor) {
      std::fprintf(stderr, "unexpected node layout\n");
      std::exit(2);
    }
  }
  for (auto [u, v] : sg.graph().edges()) {
    if (u < P && v < P) {
      proc_edges.emplace_back(u, v);
    } else {
      const int proc = u < P ? u : v;
      const int term = u < P ? v : u;
      if (sg.role(term) == kgd::Role::kInput) {
        ++att_in[proc];
      } else {
        ++att_out[proc];
      }
    }
  }
  std::printf("    {%d, %d,\n     {", sg.n(), sg.k());
  for (std::size_t i = 0; i < proc_edges.size(); ++i) {
    std::printf("{%d,%d}%s", proc_edges[i].first, proc_edges[i].second,
                i + 1 < proc_edges.size() ? "," : "");
  }
  std::printf("},\n     {");
  for (int v = 0; v < P; ++v) std::printf("%d%s", att_in[v], v + 1 < P ? "," : "");
  std::printf("},\n     {");
  for (int v = 0; v < P; ++v) std::printf("%d%s", att_out[v], v + 1 < P ? "," : "");
  std::printf("}},\n");
}

bool run(int n, int k) {
  util::Timer timer;
  verify::SynthSpec spec{n, k, kgd::achieved_max_degree(n, k)};
  std::fprintf(stderr, "synthesizing G(%d,%d), target max degree %d...\n",
               n, k, spec.max_total_degree);
  auto sg = verify::synthesize_stochastic(spec, /*seed=*/0x5eed0000 + n * 100 + k,
                                          /*max_restarts=*/512,
                                          /*iters_per_restart=*/40000);
  if (!sg) {
    std::fprintf(stderr, "  FAILED after %.1fs\n", timer.seconds());
    return false;
  }
  const auto res = verify::run_check(*sg, verify::CheckRequest::exhaustive(k));
  std::fprintf(stderr, "  found in %.1fs; exhaustive recheck: %s (%llu sets)\n",
               timer.seconds(), res.holds ? "OK" : "FAILED",
               static_cast<unsigned long long>(res.fault_sets_checked));
  if (!res.holds) return false;
  emit(*sg);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::pair<int, int>> targets;
  if (argc > 1) {
    for (int i = 1; i + 1 < argc; i += 2) {
      targets.emplace_back(std::atoi(argv[i]), std::atoi(argv[i + 1]));
    }
  } else {
    targets = {{6, 2}, {8, 2}, {7, 3}, {4, 3}};
  }
  bool all_ok = true;
  for (auto [n, k] : targets) all_ok &= run(n, k);
  return all_ok ? 0 : 1;
}
