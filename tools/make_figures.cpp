// Regenerates every figure object from the paper as Graphviz DOT files
// (render with `dot -Tpng figures/figN_*.dot`).
//
//   $ ./make_figures [output_dir]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "graph/dot.hpp"
#include "kgd/asymptotic.hpp"
#include "kgd/factory.hpp"
#include "kgd/small_k.hpp"
#include "kgd/small_n.hpp"
#include "kgd/special.hpp"
#include "verify/pipeline_solver.hpp"

using namespace kgdp;

namespace {

void write(const std::filesystem::path& dir, const std::string& name,
           const std::string& dot) {
  const auto path = dir / name;
  std::ofstream out(path);
  out << dot;
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "figures";
  std::filesystem::create_directories(dir);

  // Figure 1: a pipeline with 7 processors (drawn as the path subgraph).
  {
    const auto sg = kgd::build_solution(5, 2);
    const auto out =
        verify::find_pipeline(*sg, kgd::FaultSet::none(sg->num_nodes()));
    graph::Graph path(static_cast<int>(out.pipeline->path.size()));
    for (int i = 0; i + 1 < path.num_nodes(); ++i) path.add_edge(i, i + 1);
    std::vector<std::string> names;
    for (auto v : out.pipeline->path) names.push_back(sg->node_names()[v]);
    write(dir, "fig01_pipeline.dot", graph::to_dot(path, "Fig1", &names));
  }

  write(dir, "fig02_g3k_odd.dot", kgd::make_g3k(3).to_dot());
  write(dir, "fig03_g3k_even.dot", kgd::make_g3k(4).to_dot());
  write(dir, "fig04a_g11.dot", kgd::make_g1k(1).to_dot());
  write(dir, "fig04b_g21.dot", kgd::make_g2k(1).to_dot());
  write(dir, "fig04c_g31.dot", kgd::make_family_k1(3).to_dot());
  write(dir, "fig10_g62.dot", kgd::make_special_g62().to_dot());
  write(dir, "fig11_g82.dot", kgd::make_special_g82().to_dot());
  write(dir, "fig12_g73.dot", kgd::make_special_g73().to_dot());
  write(dir, "fig13_g43.dot", kgd::make_special_g43().to_dot());
  write(dir, "fig14_g22_4.dot", kgd::make_asymptotic_gnk(22, 4).to_dot());
  write(dir, "fig15_g26_5.dot", kgd::make_asymptotic_gnk(26, 5).to_dot());
  // Bonus: the extended graph G'(22,4) the construction is derived from.
  write(dir, "extra_extended_g22_4.dot",
        kgd::make_extended_gnk(22, 4).to_dot());
  return 0;
}
