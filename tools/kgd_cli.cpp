// Graph explorer CLI: build any covered (n, k), print its properties,
// verify it, export DOT/JSON, certify it, or run resumable certification
// campaigns over an (n, k) grid.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "io/graph_io.hpp"
#include "kgd/factory.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "util/durable_file.hpp"
#include "util/flags.hpp"
#include "util/stop_signal.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "verify/certificate.hpp"
#include "verify/check_session.hpp"
#include "verify/verdict_cache.hpp"
#include "verify/checker.hpp"
#include "verify/optimality.hpp"
#include "verify/pipeline_solver.hpp"

using namespace kgdp;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: kgd_cli <command> ...\n"
      "  build      <n> <k>              construction summary\n"
      "  dot        <n> <k>              DOT to stdout\n"
      "  verify     <n> <k> [--prune=auto|off] [--threads=T] [--json]\n"
      "                     [--batch=B] [--lanes=0|1|2|4|8] [--cache=N]\n"
      "                                  exhaustive GD check (--batch=1\n"
      "                                  forces the legacy per-item sweep;\n"
      "                                  --cache sizes a verdict cache)\n"
      "  route      <n> <k> [v ...]      pipeline around the given faults\n"
      "  save       <n> <k>              kgdp-graph text to stdout\n"
      "  json       <n> <k>              JSON export to stdout\n"
      "  certify    <n> <k>              GD certificate to stdout\n"
      "  check-cert <file>               re-validate a certificate\n"
      "  campaign run    --nmin=A --nmax=B --kmin=C --kmax=D --out=DIR\n"
      "                  [--mode=exhaustive|sampled] [--samples=S]\n"
      "                  [--seed=X] [--prune=auto|off] [--threads=T]\n"
      "                  [--shard=i/S] [--chunk=N] [--checkpoint-every=N]\n"
      "                  [--max-chunks=N] [--cache=N]\n"
      "  campaign resume --out=DIR [--threads=T] [--max-chunks=N]\n"
      "                  [--cache=N]\n"
      "  campaign merge  --out=DIR <shard-checkpoint>...\n"
      "  campaign status --out=DIR\n"
      "  serve      [--unix=PATH] [--tcp=HOST:PORT] [--threads=T]\n"
      "             [--max-queue=N] [--max-sessions=N] [--chunk=N]\n"
      "             [--drain-dir=DIR] [--checkpoint-every=N]\n"
      "             [--metrics=FILE] [--cache=N]\n"
      "                  run the kgdd daemon (SIGINT/SIGTERM drains;\n"
      "                  --checkpoint-every also snapshots sessions every\n"
      "                  N chunks so SIGKILL loses at most N chunks)\n"
      "  request    <method> --connect=unix:PATH|tcp:HOST:PORT\n"
      "             [--params=JSON] [--tag=T] [--timeout=MS]\n"
      "                  send one request, print every reply frame\n");
  return 2;
}

int flag_error(const util::FlagParser& flags) {
  std::fprintf(stderr, "%s\n", flags.error().c_str());
  return usage();
}

std::unique_ptr<util::ThreadPool> make_pool(std::int64_t threads) {
  return threads > 0
             ? std::make_unique<util::ThreadPool>(
                   static_cast<unsigned>(threads))
             : nullptr;
}

bool parse_prune(const std::string& text, verify::PruneMode* mode) {
  if (text == "auto") {
    *mode = verify::PruneMode::kAuto;
    return true;
  }
  if (text == "off") {
    *mode = verify::PruneMode::kOff;
    return true;
  }
  return false;
}

int cmd_verify(const kgd::SolutionGraph& sg, int k,
               util::FlagParser& flags) {
  verify::CheckOptions opts;
  if (!parse_prune(flags.get("prune", "auto"), &opts.prune)) {
    std::fprintf(stderr, "flag --prune: expected auto|off\n");
    return usage();
  }
  std::int64_t threads = 0, batch = 0, lanes = 0, cache_entries = 0;
  if (!flags.get_int("threads", 0, 0, 4096, &threads) ||
      !flags.get_int("batch", 64, 1, 1 << 20, &batch) ||
      !flags.get_int("lanes", 0, 0, 8, &lanes) ||
      !flags.get_int("cache", 0, 0, INT64_MAX, &cache_entries)) {
    return flag_error(flags);
  }
  if (lanes != 0 && lanes != 1 && lanes != 2 && lanes != 4 && lanes != 8) {
    std::fprintf(stderr, "flag --lanes: expected 0|1|2|4|8\n");
    return usage();
  }
  opts.batch = static_cast<std::uint32_t>(batch);
  opts.lanes = static_cast<int>(lanes);
  std::unique_ptr<verify::VerdictCache> cache;
  if (cache_entries > 0) {
    cache = std::make_unique<verify::VerdictCache>(
        static_cast<std::size_t>(cache_entries));
    opts.cache = cache.get();
  }
  const auto pool = make_pool(threads);
  opts.pool = pool.get();
  util::Timer t;
  const auto res = verify::check_gd_exhaustive(sg, k, opts);
  if (flags.has("json")) {
    std::fputs(campaign::check_result_to_json(res).dump(2).c_str(), stdout);
    std::fputc('\n', stdout);
    return res.holds ? 0 : 1;
  }
  std::printf("GD(%s, %d): %s  [%llu fault sets, %.2fs]\n",
              sg.name().c_str(), k, res.holds ? "HOLDS" : "FAILS",
              static_cast<unsigned long long>(res.fault_sets_checked),
              t.seconds());
  std::printf(
      "  solved %llu representatives, %llu pruned by symmetry "
      "(|Aut| = %llu)\n",
      static_cast<unsigned long long>(res.fault_sets_solved),
      static_cast<unsigned long long>(res.orbits_pruned),
      static_cast<unsigned long long>(res.automorphism_order));
  std::printf("  walk hits %llu, fallbacks %llu\n",
              static_cast<unsigned long long>(res.solver_walk_hits),
              static_cast<unsigned long long>(res.solver_walk_fallbacks));
  if (opts.cache != nullptr) {
    std::printf("  cache hits %llu, misses %llu, inserts %llu, "
                "evictions %llu\n",
                static_cast<unsigned long long>(res.cache_hits),
                static_cast<unsigned long long>(res.cache_misses),
                static_cast<unsigned long long>(res.cache_inserts),
                static_cast<unsigned long long>(res.cache_evictions));
  }
  if (opts.pool != nullptr) {
    std::printf("  %u workers, %llu steals; solve seconds per worker:",
                opts.pool->thread_count(),
                static_cast<unsigned long long>(res.steal_count));
    for (double s : res.worker_solve_seconds) std::printf(" %.3f", s);
    std::printf("\n");
  }
  if (res.counterexample) {
    std::printf("  counterexample: %s\n",
                res.counterexample->to_string().c_str());
  }
  return res.holds ? 0 : 1;
}

std::string checkpoint_path(const std::string& out_dir) {
  return out_dir + "/checkpoint.kgdp";
}

// Shared tail of `campaign run` and `campaign resume`.
int drive_campaign(campaign::CampaignState state, const std::string& out_dir,
                   std::int64_t threads, std::int64_t max_chunks,
                   std::int64_t cache_entries) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::ofstream telemetry_out(out_dir + "/telemetry.jsonl", std::ios::app);
  campaign::TelemetryWriter telemetry(&telemetry_out);
  const auto pool = make_pool(threads);
  campaign::CampaignRunner runner(std::move(state), checkpoint_path(out_dir),
                                  &telemetry, pool.get());
  std::unique_ptr<verify::VerdictCache> cache;
  if (cache_entries > 0) {
    cache = std::make_unique<verify::VerdictCache>(
        static_cast<std::size_t>(cache_entries));
    runner.set_verdict_cache(cache.get());
  }
  campaign::RunLimits limits;
  limits.max_chunks =
      max_chunks > 0 ? static_cast<std::uint64_t>(max_chunks) : 0;
  // SIGINT/SIGTERM interrupt between chunks: the runner checkpoints the
  // in-flight cursor and reports an incomplete outcome (exit 3 below).
  util::StopSignal::instance().install();
  limits.stop = [] { return util::StopSignal::instance().requested(); };
  const campaign::RunOutcome outcome = runner.run(limits);
  std::fputs(campaign::status_summary(runner.state()).c_str(), stdout);
  if (!outcome.complete) {
    std::printf("campaign: INTERRUPTED after %llu chunks (resume with "
                "`kgd_cli campaign resume --out=%s`)\n",
                static_cast<unsigned long long>(outcome.chunks_run),
                out_dir.c_str());
    return 3;
  }
  std::printf("campaign: COMPLETE, %s\n",
              outcome.all_hold ? "all instances HOLD"
                               : "some instances FAIL");
  return outcome.all_hold ? 0 : 1;
}

int cmd_campaign(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string sub = argv[2];

  util::FlagParser flags;
  flags.flag("out")
      .flag("threads")
      .flag("max-chunks")
      .flag("cache");
  if (sub == "run") {
    flags.flag("nmin").flag("nmax").flag("kmin").flag("kmax");
    flags.flag("mode").flag("samples").flag("seed").flag("prune");
    flags.flag("shard").flag("chunk").flag("checkpoint-every");
  }
  if (!flags.parse(argc, argv, 3)) return flag_error(flags);

  const std::string out_dir = flags.get("out");
  if (out_dir.empty()) {
    std::fprintf(stderr, "campaign %s: --out=DIR is required\n",
                 sub.c_str());
    return usage();
  }
  std::int64_t threads = 0, max_chunks = 0, cache_entries = 0;
  if (!flags.get_int("threads", 0, 0, 4096, &threads) ||
      !flags.get_int("max-chunks", 0, 0, INT64_MAX, &max_chunks) ||
      !flags.get_int("cache", 0, 0, INT64_MAX, &cache_entries)) {
    return flag_error(flags);
  }

  try {
    if (sub == "run") {
      campaign::CampaignConfig config;
      std::int64_t v = 0;
      if (!flags.get_int("nmin", 1, 1, 1 << 20, &v)) return flag_error(flags);
      config.n_min = static_cast<int>(v);
      if (!flags.get_int("nmax", config.n_min, 1, 1 << 20, &v)) {
        return flag_error(flags);
      }
      config.n_max = static_cast<int>(v);
      if (!flags.get_int("kmin", 1, 1, 64, &v)) return flag_error(flags);
      config.k_min = static_cast<int>(v);
      if (!flags.get_int("kmax", config.k_min, 1, 64, &v)) {
        return flag_error(flags);
      }
      config.k_max = static_cast<int>(v);
      const std::string mode = flags.get("mode", "exhaustive");
      if (mode == "exhaustive") {
        config.mode = verify::CheckMode::kExhaustive;
      } else if (mode == "sampled") {
        config.mode = verify::CheckMode::kSampled;
      } else {
        std::fprintf(stderr, "flag --mode: expected exhaustive|sampled\n");
        return usage();
      }
      if (!flags.get_int("samples", 1000, 0, INT64_MAX, &v)) {
        return flag_error(flags);
      }
      config.samples = static_cast<std::uint64_t>(v);
      if (!flags.get_int("seed", 1, 0, INT64_MAX, &v)) {
        return flag_error(flags);
      }
      config.seed = static_cast<std::uint64_t>(v);
      if (!parse_prune(flags.get("prune", "auto"), &config.prune)) {
        std::fprintf(stderr, "flag --prune: expected auto|off\n");
        return usage();
      }
      if (flags.has("shard") &&
          !util::FlagParser::parse_shard(flags.get("shard"),
                                         &config.shard_index,
                                         &config.shard_count)) {
        std::fprintf(stderr,
                     "flag --shard: expected i/S with 0 <= i < S\n");
        return usage();
      }
      if (!flags.get_int("chunk", 256, 1, INT64_MAX, &v)) {
        return flag_error(flags);
      }
      config.chunk = static_cast<std::uint64_t>(v);
      if (!flags.get_int("checkpoint-every", 4, 0, INT64_MAX, &v)) {
        return flag_error(flags);
      }
      config.checkpoint_every = static_cast<std::uint64_t>(v);
      return drive_campaign(campaign::make_campaign(config), out_dir,
                            threads, max_chunks, cache_entries);
    }
    if (sub == "resume") {
      // A run killed between open and rename leaks checkpoint temp
      // files; clear them before touching the checkpoint itself.
      for (const std::string& path : util::remove_stale_tmp_files(out_dir)) {
        std::printf("campaign resume: removed stale temp file %s\n",
                    path.c_str());
      }
      return drive_campaign(
          campaign::load_campaign_file(checkpoint_path(out_dir)), out_dir,
          threads, max_chunks, cache_entries);
    }
    if (sub == "merge") {
      if (flags.positionals().empty()) {
        std::fprintf(stderr,
                     "campaign merge: list the shard checkpoint files\n");
        return usage();
      }
      std::error_code ec;
      std::filesystem::create_directories(out_dir, ec);
      if (ec) {
        std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                     ec.message().c_str());
        return 1;
      }
      std::ofstream telemetry_out(out_dir + "/telemetry.jsonl",
                                  std::ios::app);
      campaign::TelemetryWriter telemetry(&telemetry_out);
      std::vector<campaign::CampaignState> shards;
      std::size_t skipped = 0;
      for (const std::string& path : flags.positionals()) {
        try {
          shards.push_back(campaign::load_campaign_file(path));
        } catch (const util::CheckpointError& e) {
          // The loader already quarantined the unusable file; record
          // the skip and keep reading the rest instead of throwing the
          // whole merge away.
          io::JsonObject fields;
          fields["path"] = path;
          fields["kind"] = util::to_string(e.kind());
          fields["error"] = std::string(e.what());
          telemetry.emit("merge_shard_skipped", std::move(fields));
          std::fprintf(stderr, "campaign merge: skipping shard %s (%s): %s\n",
                       path.c_str(), util::to_string(e.kind()), e.what());
          ++skipped;
        }
      }
      if (skipped != 0) {
        std::printf(
            "campaign: MERGE INCOMPLETE — skipped %zu of %zu shard "
            "file(s); re-run the skipped shards and merge again\n",
            skipped, flags.positionals().size());
        return 1;
      }
      const campaign::CampaignState merged = campaign::merge_shards(shards);
      campaign::write_campaign_file(checkpoint_path(out_dir), merged);
      std::fputs(campaign::status_summary(merged).c_str(), stdout);
      bool all_hold = true;
      for (const auto& inst : merged.instances) {
        if (!inst.result.holds) all_hold = false;
      }
      std::printf("campaign: MERGED %zu shards, %s\n", shards.size(),
                  all_hold ? "all instances HOLD" : "some instances FAIL");
      return all_hold ? 0 : 1;
    }
    if (sub == "status") {
      const auto state = campaign::load_campaign_file(checkpoint_path(out_dir));
      std::fputs(campaign::status_summary(state).c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign %s: %s\n", sub.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown campaign subcommand: %s\n", sub.c_str());
  return usage();
}

int cmd_serve(int argc, char** argv) {
  util::FlagParser flags;
  flags.flag("unix").flag("tcp").flag("threads").flag("max-queue");
  flags.flag("max-sessions").flag("chunk").flag("drain-dir").flag("metrics");
  flags.flag("checkpoint-every").flag("cache");
  if (!flags.parse(argc, argv, 2)) return flag_error(flags);

  service::DaemonConfig config;
  if (flags.has("unix")) {
    config.endpoints.push_back(net::Endpoint::unix_path(flags.get("unix")));
  }
  if (flags.has("tcp")) {
    const auto ep = net::Endpoint::parse("tcp:" + flags.get("tcp"));
    if (!ep) {
      std::fprintf(stderr, "flag --tcp: expected HOST:PORT\n");
      return usage();
    }
    config.endpoints.push_back(*ep);
  }
  if (config.endpoints.empty()) {
    std::fprintf(stderr, "serve: give --unix=PATH and/or --tcp=HOST:PORT\n");
    return usage();
  }
  std::int64_t v = 0;
  if (!flags.get_int("threads", 0, 0, 4096, &v)) return flag_error(flags);
  config.service.threads = static_cast<unsigned>(v);
  if (!flags.get_int("max-queue", 64, 0, 1 << 20, &v)) {
    return flag_error(flags);
  }
  config.service.max_queue = static_cast<std::size_t>(v);
  if (!flags.get_int("max-sessions", 8, 1, 4096, &v)) {
    return flag_error(flags);
  }
  config.service.max_sessions = static_cast<std::size_t>(v);
  if (!flags.get_int("chunk", 512, 1, INT64_MAX, &v)) {
    return flag_error(flags);
  }
  config.service.default_chunk = static_cast<std::uint64_t>(v);
  config.service.drain_dir = flags.get("drain-dir", ".");
  if (!flags.get_int("checkpoint-every", 0, 0, INT64_MAX, &v)) {
    return flag_error(flags);
  }
  config.service.session_checkpoint_every = static_cast<std::uint64_t>(v);
  config.service.metrics_path = flags.get("metrics");
  if (!flags.get_int("cache", 0, 0, INT64_MAX, &v)) {
    return flag_error(flags);
  }
  config.service.cache_entries = static_cast<std::uint64_t>(v);

  try {
    service::Daemon daemon(std::move(config));
    if (flags.has("unix")) {
      std::printf("kgdd: listening on unix:%s\n", flags.get("unix").c_str());
    }
    if (daemon.tcp_port() != 0) {
      std::printf("kgdd: listening on tcp port %d\n", daemon.tcp_port());
    }
    std::fflush(stdout);
    daemon.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve: %s\n", e.what());
    return 1;
  }
  std::printf("kgdd: drained\n");
  return 0;
}

int cmd_request(int argc, char** argv) {
  util::FlagParser flags;
  flags.flag("connect").flag("params").flag("tag").flag("timeout");
  if (!flags.parse(argc, argv, 2)) return flag_error(flags);
  if (flags.positionals().empty()) {
    std::fprintf(stderr, "request: give the method name\n");
    return usage();
  }
  const auto ep = net::Endpoint::parse(flags.get("connect"));
  if (!ep) {
    std::fprintf(stderr,
                 "request: --connect=unix:PATH|tcp:HOST:PORT is required\n");
    return usage();
  }
  std::int64_t timeout = 0;
  if (!flags.get_int("timeout", 600000, -1, INT32_MAX, &timeout)) {
    return flag_error(flags);
  }

  io::JsonObject request;
  request["method"] = flags.positionals()[0];
  if (flags.has("params")) {
    try {
      request["params"] = io::Json::parse(flags.get("params"));
    } catch (const io::JsonParseError& e) {
      std::fprintf(stderr, "request: bad --params JSON: %s\n", e.what());
      return 2;
    }
  }
  if (flags.has("tag")) request["tag"] = flags.get("tag");

  std::string error;
  std::optional<net::Client> client;
  // A restarting daemon refuses TCP connects (ECONNREFUSED) or has not
  // recreated its unix socket yet (ENOENT); both are transient, so
  // retry briefly with exponential backoff before giving up.
  for (int attempt = 0;; ++attempt) {
    int connect_errno = 0;
    client = net::Client::connect(*ep, &error, &connect_errno);
    if (client) break;
    const bool retryable = connect_errno == ECONNREFUSED ||
                           connect_errno == ENOENT ||
                           connect_errno == ECONNRESET;
    if (!retryable || attempt >= 5) {
      std::fprintf(stderr, "request: cannot connect to %s: %s\n",
                   ep->to_string().c_str(), error.c_str());
      return 1;
    }
    const int delay_ms = 100 << attempt;
    std::fprintf(stderr, "request: %s; retrying in %d ms\n", error.c_str(),
                 delay_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (!client->send_json(io::Json(std::move(request)), &error)) {
    std::fprintf(stderr, "request: %s\n", error.c_str());
    return 1;
  }
  while (true) {
    net::ReadStatus status = net::ReadStatus::kError;
    const auto frame =
        client->read_json(static_cast<int>(timeout), &error, &status);
    if (!frame) {
      if (status == net::ReadStatus::kClosed) {
        std::fprintf(stderr,
                     "request: server closed connection before a terminal "
                     "frame\n");
      } else if (status == net::ReadStatus::kTimeout) {
        std::fprintf(stderr,
                     "request: timed out after %lld ms waiting for a reply\n",
                     static_cast<long long>(timeout));
      } else {
        std::fprintf(stderr, "request: %s\n", error.c_str());
      }
      return 1;
    }
    std::printf("%s\n", frame->dump().c_str());
    std::fflush(stdout);
    if (service::is_terminal_frame(*frame)) {
      const io::Json* type = frame->find("type");
      return type != nullptr && type->is_string() &&
                     type->as_string() == "result"
                 ? 0
                 : 1;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "campaign") return cmd_campaign(argc, argv);
  if (cmd == "serve") return cmd_serve(argc, argv);
  if (cmd == "request") return cmd_request(argc, argv);

  if (argc < 3) return usage();

  if (cmd == "check-cert") {
    std::ifstream in(argv[2]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    const auto stats = verify::check_certificate(in);
    std::printf("certificate: %s (%llu entries)\n",
                stats.ok() ? "VALID" : "INVALID",
                static_cast<unsigned long long>(stats.entries));
    if (!stats.ok()) std::printf("  %s\n", stats.error.c_str());
    return stats.ok() ? 0 : 1;
  }

  util::FlagParser flags;
  if (cmd == "verify") {
    flags.flag("prune").flag("threads").flag("json", /*requires_value=*/false);
    flags.flag("batch").flag("lanes").flag("cache");
  }
  if (!flags.parse(argc, argv, 2)) return flag_error(flags);
  if (flags.positionals().size() < 2) return usage();
  const int n = std::atoi(flags.positionals()[0].c_str());
  const int k = std::atoi(flags.positionals()[1].c_str());

  auto built = kgd::build_solution(n, k);
  if (!built) {
    std::fprintf(stderr,
                 "no construction for n=%d k=%d (paper coverage: n<=3 any "
                 "k; k<=3 any n; k>=4 with n>=2k+5)\n",
                 n, k);
    return 1;
  }
  const kgd::SolutionGraph& sg = *built;

  if (cmd == "build") {
    std::printf("%s via %s\n", sg.name().c_str(),
                kgd::construction_method(n, k).c_str());
    std::printf("  nodes: %d (%d inputs, %d outputs, %d processors)\n",
                sg.num_nodes(), sg.num_inputs(), sg.num_outputs(),
                sg.num_processors());
    std::printf("  edges: %zu\n", sg.graph().num_edges());
    const auto rep = verify::certify_optimality(sg);
    std::printf("  %s\n", rep.summary().c_str());
    return 0;
  }
  if (cmd == "dot") {
    std::fputs(sg.to_dot().c_str(), stdout);
    return 0;
  }
  if (cmd == "verify") return cmd_verify(sg, k, flags);
  if (cmd == "save") {
    io::save_solution(std::cout, sg);
    return 0;
  }
  if (cmd == "json") {
    std::fputs(io::solution_to_json(sg).dump(2).c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  if (cmd == "certify") {
    try {
      verify::write_certificate(std::cout, sg, k);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot certify: %s\n", e.what());
      return 1;
    }
    return 0;
  }
  if (cmd == "route") {
    std::vector<int> faulty;
    for (std::size_t i = 2; i < flags.positionals().size(); ++i) {
      faulty.push_back(std::atoi(flags.positionals()[i].c_str()));
    }
    const kgd::FaultSet fs(sg.num_nodes(), faulty);
    const auto out = verify::find_pipeline(sg, fs);
    if (out.status != verify::SolveStatus::kFound) {
      std::printf("no pipeline with faults %s\n", fs.to_string().c_str());
      return 1;
    }
    std::printf("pipeline (%d processors): %s\n",
                out.pipeline->num_processors(),
                out.pipeline->to_string(sg).c_str());
    return 0;
  }
  return usage();
}
