// Graph explorer CLI: build any covered (n, k), print its properties,
// verify it, export DOT, or reconfigure around an explicit fault list.
//
//   kgd_cli build   <n> <k>            construction summary
//   kgd_cli dot     <n> <k>            DOT to stdout
//   kgd_cli verify  <n> <k> [--prune=auto|off] [--threads=T]
//                                      exhaustive GD check (symmetry-
//                                      pruned by default; T>0 enables the
//                                      work-stealing parallel sweep)
//   kgd_cli route   <n> <k> [v ...]    pipeline around the given faults
//   kgd_cli save    <n> <k>            kgdp-graph text to stdout
//   kgd_cli json    <n> <k>            JSON export to stdout
//   kgd_cli certify <n> <k>            GD certificate to stdout
//   kgd_cli check-cert <file>          re-validate a certificate
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "io/graph_io.hpp"
#include "kgd/factory.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "verify/certificate.hpp"
#include "verify/checker.hpp"
#include "verify/optimality.hpp"
#include "verify/pipeline_solver.hpp"

using namespace kgdp;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: kgd_cli {build|dot|verify|route} <n> <k> "
               "[fault...] [--prune=auto|off] [--threads=T]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];

  if (cmd == "check-cert") {
    std::ifstream in(argv[2]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    const auto stats = verify::check_certificate(in);
    std::printf("certificate: %s (%llu entries)\n",
                stats.ok() ? "VALID" : "INVALID",
                static_cast<unsigned long long>(stats.entries));
    if (!stats.ok()) std::printf("  %s\n", stats.error.c_str());
    return stats.ok() ? 0 : 1;
  }

  if (argc < 4) return usage();
  const int n = std::atoi(argv[2]);
  const int k = std::atoi(argv[3]);

  auto built = kgd::build_solution(n, k);
  if (!built) {
    std::fprintf(stderr,
                 "no construction for n=%d k=%d (paper coverage: n<=3 any "
                 "k; k<=3 any n; k>=4 with n>=2k+5)\n",
                 n, k);
    return 1;
  }
  const kgd::SolutionGraph& sg = *built;

  if (cmd == "build") {
    std::printf("%s via %s\n", sg.name().c_str(),
                kgd::construction_method(n, k).c_str());
    std::printf("  nodes: %d (%d inputs, %d outputs, %d processors)\n",
                sg.num_nodes(), sg.num_inputs(), sg.num_outputs(),
                sg.num_processors());
    std::printf("  edges: %zu\n", sg.graph().num_edges());
    const auto rep = verify::certify_optimality(sg);
    std::printf("  %s\n", rep.summary().c_str());
    return 0;
  }
  if (cmd == "dot") {
    std::fputs(sg.to_dot().c_str(), stdout);
    return 0;
  }
  if (cmd == "verify") {
    verify::CheckOptions opts;
    unsigned threads = 0;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--prune=off") {
        opts.prune = verify::PruneMode::kOff;
      } else if (arg == "--prune=auto") {
        opts.prune = verify::PruneMode::kAuto;
      } else if (arg.rfind("--threads=", 0) == 0) {
        threads = static_cast<unsigned>(std::atoi(arg.c_str() + 10));
      } else {
        std::fprintf(stderr, "unknown verify flag: %s\n", arg.c_str());
        return usage();
      }
    }
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 0) {
      pool = std::make_unique<util::ThreadPool>(threads);
      opts.pool = pool.get();
    }
    util::Timer t;
    const auto res = verify::check_gd_exhaustive(sg, k, opts);
    std::printf("GD(%s, %d): %s  [%llu fault sets, %.2fs]\n",
                sg.name().c_str(), k, res.holds ? "HOLDS" : "FAILS",
                static_cast<unsigned long long>(res.fault_sets_checked),
                t.seconds());
    std::printf(
        "  solved %llu representatives, %llu pruned by symmetry "
        "(|Aut| = %llu)\n",
        static_cast<unsigned long long>(res.fault_sets_solved),
        static_cast<unsigned long long>(res.orbits_pruned),
        static_cast<unsigned long long>(res.automorphism_order));
    if (opts.pool) {
      std::printf("  %u workers, %llu steals; solve seconds per worker:",
                  opts.pool->thread_count(),
                  static_cast<unsigned long long>(res.steal_count));
      for (double s : res.worker_solve_seconds) std::printf(" %.3f", s);
      std::printf("\n");
    }
    if (res.counterexample) {
      std::printf("  counterexample: %s\n",
                  res.counterexample->to_string().c_str());
    }
    return res.holds ? 0 : 1;
  }
  if (cmd == "save") {
    io::save_solution(std::cout, sg);
    return 0;
  }
  if (cmd == "json") {
    std::fputs(io::solution_to_json(sg).dump(2).c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  if (cmd == "certify") {
    try {
      verify::write_certificate(std::cout, sg, k);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot certify: %s\n", e.what());
      return 1;
    }
    return 0;
  }
  if (cmd == "route") {
    std::vector<int> faulty;
    for (int i = 4; i < argc; ++i) faulty.push_back(std::atoi(argv[i]));
    const kgd::FaultSet fs(sg.num_nodes(), faulty);
    const auto out = verify::find_pipeline(sg, fs);
    if (out.status != verify::SolveStatus::kFound) {
      std::printf("no pipeline with faults %s\n", fs.to_string().c_str());
      return 1;
    }
    std::printf("pipeline (%d processors): %s\n",
                out.pipeline->num_processors(),
                out.pipeline->to_string(sg).c_str());
    return 0;
  }
  return usage();
}
