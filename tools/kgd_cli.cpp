// Graph explorer CLI: build any covered (n, k), print its properties,
// verify it, export DOT/JSON, certify it, or run resumable certification
// campaigns over an (n, k) grid.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/fleet_runner.hpp"
#include "fault/canonical.hpp"
#include "fleet/coordinator.hpp"
#include "io/graph_io.hpp"
#include "kgd/factory.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "reconfig/atlas.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "util/backoff.hpp"
#include "util/durable_file.hpp"
#include "util/flags.hpp"
#include "util/stop_signal.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "verify/certificate.hpp"
#include "verify/check_session.hpp"
#include "verify/verdict_cache.hpp"
#include "verify/checker.hpp"
#include "verify/optimality.hpp"
#include "verify/pipeline_solver.hpp"

using namespace kgdp;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: kgd_cli <command> ...\n"
      "  build      <n> <k>              construction summary\n"
      "  dot        <n> <k>              DOT to stdout\n"
      "  verify     <n> <k> [--prune=auto|off] [--threads=T] [--json]\n"
      "                     [--batch=B] [--lanes=0|1|2|4|8|16] [--cache=N]\n"
      "                                  exhaustive GD check (--batch=1\n"
      "                                  forces the legacy per-item sweep;\n"
      "                                  --cache sizes a verdict cache)\n"
      "  route      <n> <k> [v ...] [--atlas=FILE] [--no-atlas]\n"
      "                                  pipeline around the given faulty\n"
      "                                  nodes, atlas-accelerated (--atlas\n"
      "                                  preloads a built artifact;\n"
      "                                  --no-atlas computes directly —\n"
      "                                  the output is identical)\n"
      "  atlas build <n> <k> [--max-faults=M] [--out=FILE] [--shard=i/S]\n"
      "                                  precompute the orbit-keyed route\n"
      "                                  atlas (all fault sets of size\n"
      "                                  <= M, default k; shardable)\n"
      "  atlas info  <file>              print an atlas artifact header\n"
      "  atlas merge --out=FILE <shard>...\n"
      "                                  merge shard artifacts (same graph)\n"
      "  save       <n> <k>              kgdp-graph text to stdout\n"
      "  json       <n> <k>              JSON export to stdout\n"
      "  certify    <n> <k>              GD certificate to stdout\n"
      "  check-cert <file>               re-validate a certificate\n"
      "  campaign run    --nmin=A --nmax=B --kmin=C --kmax=D --out=DIR\n"
      "                  [--mode=exhaustive|sampled] [--samples=S]\n"
      "                  [--seed=X] [--prune=auto|off] [--threads=T]\n"
      "                  [--shard=i/S] [--chunk=N] [--checkpoint-every=N]\n"
      "                  [--max-chunks=N] [--cache=N]\n"
      "                  [--fleet=EP[,EP...]] [--fleet-chunk=N]\n"
      "                  [--lease-grain=G] [--min-steal=N]\n"
      "                  [--heartbeat-ms=MS] [--fleet-reconnect-ms=MS]\n"
      "                  [--fleet-listen=EP]\n"
      "                  --fleet dispatches each exhaustive instance as\n"
      "                  shard leases over remote kgdd workers (each EP is\n"
      "                  unix:PATH or tcp:HOST:PORT; excludes --shard,\n"
      "                  sampled mode, --threads, and --cache); the lease\n"
      "                  table is checkpointed to DIR/fleet.kgdp, so a\n"
      "                  killed coordinator resumes mid-instance;\n"
      "                  --fleet-listen accepts live fleet.join/\n"
      "                  fleet.leave registrations (--fleet may then be\n"
      "                  empty); exit 4 = every worker written off\n"
      "  campaign resume --out=DIR [--threads=T] [--max-chunks=N]\n"
      "                  [--cache=N] [--fleet=EP[,EP...] ...]\n"
      "  campaign merge  --out=DIR <shard-checkpoint>...\n"
      "  campaign status --out=DIR\n"
      "  serve      [--unix=PATH] [--tcp=HOST:PORT] [--threads=T]\n"
      "             [--max-queue=N] [--max-sessions=N] [--chunk=N]\n"
      "             [--drain-dir=DIR] [--checkpoint-every=N]\n"
      "             [--metrics=FILE] [--cache=N] [--atlas=N]\n"
      "             [--atlas-load=FILE[,FILE...]]\n"
      "                  run the kgdd daemon (SIGINT/SIGTERM drains;\n"
      "                  --checkpoint-every also snapshots sessions every\n"
      "                  N chunks so SIGKILL loses at most N chunks;\n"
      "                  --atlas sizes the route atlas, 0 disables;\n"
      "                  --atlas-load preloads built atlas artifacts)\n"
      "  request    <method> --connect=unix:PATH|tcp:HOST:PORT\n"
      "             [--params=JSON] [--tag=T] [--timeout=MS]\n"
      "                  send one request (verify|route|construct|sim.run|\n"
      "                  campaign.status|stats|cancel|ping|shutdown|lease|\n"
      "                  lease.release), print every reply frame\n"
      "  worker     --listen=unix:PATH|tcp:HOST:PORT [--threads=T]\n"
      "             [--chunk=N] [--max-sessions=N] [--join=EP]\n"
      "                  run a fleet worker: a kgdd daemon tuned for\n"
      "                  coordinator-dispatched lease duty (no disk\n"
      "                  checkpoints — the coordinator re-leases from\n"
      "                  streamed cursors on loss); --join announces the\n"
      "                  worker to a running coordinator's --fleet-listen\n"
      "                  endpoint (fleet.leave is sent back on drain)\n");
  return 2;
}

int flag_error(const util::FlagParser& flags) {
  std::fprintf(stderr, "%s\n", flags.error().c_str());
  return usage();
}

// Strict positional-integer parse: the whole token must be a decimal
// number in [min, max]. (std::atoi would silently read "12x" as 12 and
// anything unparsable as 0.)
bool parse_int_arg(const std::string& text, std::int64_t min,
                   std::int64_t max, std::int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (v < min || v > max) return false;
  *out = v;
  return true;
}

std::unique_ptr<util::ThreadPool> make_pool(std::int64_t threads) {
  return threads > 0
             ? std::make_unique<util::ThreadPool>(
                   static_cast<unsigned>(threads))
             : nullptr;
}

bool parse_prune(const std::string& text, verify::PruneMode* mode) {
  if (text == "auto") {
    *mode = verify::PruneMode::kAuto;
    return true;
  }
  if (text == "off") {
    *mode = verify::PruneMode::kOff;
    return true;
  }
  return false;
}

int cmd_verify(const kgd::SolutionGraph& sg, int k,
               util::FlagParser& flags) {
  verify::CheckOptions opts;
  if (!parse_prune(flags.get("prune", "auto"), &opts.prune)) {
    std::fprintf(stderr, "flag --prune: expected auto|off\n");
    return usage();
  }
  std::int64_t threads = 0, batch = 0, lanes = 0, cache_entries = 0;
  if (!flags.get_int("threads", 0, 0, 4096, &threads) ||
      !flags.get_int("batch", 64, 1, 1 << 20, &batch) ||
      !flags.get_int("lanes", 0, 0, 16, &lanes) ||
      !flags.get_int("cache", 0, 0, INT64_MAX, &cache_entries)) {
    return flag_error(flags);
  }
  if (lanes != 0 && lanes != 1 && lanes != 2 && lanes != 4 && lanes != 8 &&
      lanes != 16) {
    std::fprintf(stderr, "flag --lanes: expected 0|1|2|4|8|16\n");
    return usage();
  }
  opts.batch = static_cast<std::uint32_t>(batch);
  opts.lanes = static_cast<int>(lanes);
  std::unique_ptr<verify::VerdictCache> cache;
  if (cache_entries > 0) {
    cache = std::make_unique<verify::VerdictCache>(
        static_cast<std::size_t>(cache_entries));
    opts.cache = cache.get();
  }
  const auto pool = make_pool(threads);
  opts.pool = pool.get();
  util::Timer t;
  const auto res = verify::run_check(sg, verify::CheckRequest::exhaustive(k, opts));
  if (flags.has("json")) {
    std::fputs(campaign::check_result_to_json(res).dump(2).c_str(), stdout);
    std::fputc('\n', stdout);
    return res.holds ? 0 : 1;
  }
  std::printf("GD(%s, %d): %s  [%llu fault sets, %.2fs]\n",
              sg.name().c_str(), k, res.holds ? "HOLDS" : "FAILS",
              static_cast<unsigned long long>(res.fault_sets_checked),
              t.seconds());
  std::printf(
      "  solved %llu representatives, %llu pruned by symmetry "
      "(|Aut| = %llu)\n",
      static_cast<unsigned long long>(res.fault_sets_solved),
      static_cast<unsigned long long>(res.orbits_pruned),
      static_cast<unsigned long long>(res.automorphism_order));
  std::printf("  walk hits %llu, fallbacks %llu\n",
              static_cast<unsigned long long>(res.solver_walk_hits),
              static_cast<unsigned long long>(res.solver_walk_fallbacks));
  if (opts.cache != nullptr) {
    std::printf("  cache hits %llu, misses %llu, inserts %llu, "
                "evictions %llu\n",
                static_cast<unsigned long long>(res.cache_hits),
                static_cast<unsigned long long>(res.cache_misses),
                static_cast<unsigned long long>(res.cache_inserts),
                static_cast<unsigned long long>(res.cache_evictions));
  }
  if (opts.pool != nullptr) {
    std::printf("  %u workers, %llu steals; solve seconds per worker:",
                opts.pool->thread_count(),
                static_cast<unsigned long long>(res.steal_count));
    for (double s : res.worker_solve_seconds) std::printf(" %.3f", s);
    std::printf("\n");
  }
  if (res.counterexample) {
    std::printf("  counterexample: %s\n",
                res.counterexample->to_string().c_str());
  }
  return res.holds ? 0 : 1;
}

std::string checkpoint_path(const std::string& out_dir) {
  return out_dir + "/checkpoint.kgdp";
}

// Shared tail of `campaign run` and `campaign resume`.
int drive_campaign(campaign::CampaignState state, const std::string& out_dir,
                   std::int64_t threads, std::int64_t max_chunks,
                   std::int64_t cache_entries) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::ofstream telemetry_out(out_dir + "/telemetry.jsonl", std::ios::app);
  campaign::TelemetryWriter telemetry(&telemetry_out);
  const auto pool = make_pool(threads);
  campaign::CampaignRunner runner(std::move(state), checkpoint_path(out_dir),
                                  &telemetry, pool.get());
  std::unique_ptr<verify::VerdictCache> cache;
  if (cache_entries > 0) {
    cache = std::make_unique<verify::VerdictCache>(
        static_cast<std::size_t>(cache_entries));
    runner.set_verdict_cache(cache.get());
  }
  campaign::RunLimits limits;
  limits.max_chunks =
      max_chunks > 0 ? static_cast<std::uint64_t>(max_chunks) : 0;
  // SIGINT/SIGTERM interrupt between chunks: the runner checkpoints the
  // in-flight cursor and reports an incomplete outcome (exit 3 below).
  util::StopSignal::instance().install();
  limits.stop = [] { return util::StopSignal::instance().requested(); };
  const campaign::RunOutcome outcome = runner.run(limits);
  std::fputs(campaign::status_summary(runner.state()).c_str(), stdout);
  if (!outcome.complete) {
    std::printf("campaign: INTERRUPTED after %llu chunks (resume with "
                "`kgd_cli campaign resume --out=%s`)\n",
                static_cast<unsigned long long>(outcome.chunks_run),
                out_dir.c_str());
    return 3;
  }
  std::printf("campaign: COMPLETE, %s\n",
              outcome.all_hold ? "all instances HOLD"
                               : "some instances FAIL");
  return outcome.all_hold ? 0 : 1;
}

// Comma-separated endpoint list for --fleet; false on any bad spec.
bool parse_fleet_endpoints(const std::string& text,
                           std::vector<net::Endpoint>* out) {
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string one =
        text.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    if (!one.empty()) {
      const auto ep = net::Endpoint::parse(one);
      if (!ep) return false;
      out->push_back(*ep);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out->empty();
}

// Fleet tail of `campaign run --fleet=...` and `campaign resume` against
// a fleet: dispatches every exhaustive instance across the workers.
int drive_campaign_fleet(campaign::CampaignState state,
                         const std::string& out_dir,
                         fleet::FleetConfig fleet_config) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::ofstream telemetry_out(out_dir + "/telemetry.jsonl", std::ios::app);
  campaign::TelemetryWriter telemetry(&telemetry_out);
  // Durable lease table: a coordinator SIGKILLed mid-instance resumes
  // the in-flight partition from here on the next run/resume.
  fleet_config.checkpoint_path = out_dir + "/fleet.kgdp";
  fleet::Coordinator coordinator(std::move(fleet_config), &telemetry);
  if (coordinator.listen_tcp_port() > 0) {
    std::printf("fleet: registration listener on tcp port %d\n",
                coordinator.listen_tcp_port());
    std::fflush(stdout);
  }
  campaign::FleetCampaignRunner runner(std::move(state),
                                       checkpoint_path(out_dir),
                                       &coordinator);
  util::StopSignal::instance().install();
  campaign::FleetRunOutcome outcome;
  try {
    outcome =
        runner.run([] { return util::StopSignal::instance().requested(); });
  } catch (const fleet::AllWorkersDeadError& e) {
    std::fprintf(stderr, "fleet: %s\n", e.what());
    std::printf("campaign: ALL WORKERS DEAD (restart workers, then resume "
                "with `kgd_cli campaign resume --out=%s --fleet=...`)\n",
                out_dir.c_str());
    return 4;
  }
  std::fputs(campaign::status_summary(runner.state()).c_str(), stdout);
  std::printf("fleet: %llu instances over %d workers (%llu leases, "
              "%llu stolen, %llu reassigned, %llu worker losses)\n",
              static_cast<unsigned long long>(outcome.instances_run),
              coordinator.worker_count(),
              static_cast<unsigned long long>(outcome.leases_planned),
              static_cast<unsigned long long>(outcome.leases_stolen),
              static_cast<unsigned long long>(outcome.leases_reassigned),
              static_cast<unsigned long long>(outcome.workers_lost));
  if (!outcome.complete) {
    std::printf("campaign: INTERRUPTED (resume with "
                "`kgd_cli campaign resume --out=%s --fleet=...`)\n",
                out_dir.c_str());
    return 3;
  }
  std::printf("campaign: COMPLETE, %s\n",
              outcome.all_hold ? "all instances HOLD"
                               : "some instances FAIL");
  return outcome.all_hold ? 0 : 1;
}

int cmd_campaign(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string sub = argv[2];

  util::FlagParser flags;
  flags.flag("out")
      .flag("threads")
      .flag("max-chunks")
      .flag("cache");
  if (sub == "run" || sub == "resume") {
    flags.flag("fleet").flag("fleet-chunk").flag("lease-grain");
    flags.flag("min-steal").flag("heartbeat-ms").flag("fleet-reconnect-ms");
    flags.flag("fleet-listen");
  }
  if (sub == "run") {
    flags.flag("nmin").flag("nmax").flag("kmin").flag("kmax");
    flags.flag("mode").flag("samples").flag("seed").flag("prune");
    flags.flag("shard").flag("chunk").flag("checkpoint-every");
  }
  if (!flags.parse(argc, argv, 3)) return flag_error(flags);

  const std::string out_dir = flags.get("out");
  if (out_dir.empty()) {
    std::fprintf(stderr, "campaign %s: --out=DIR is required\n",
                 sub.c_str());
    return usage();
  }
  std::int64_t threads = 0, max_chunks = 0, cache_entries = 0;
  if (!flags.get_int("threads", 0, 0, 4096, &threads) ||
      !flags.get_int("max-chunks", 0, 0, INT64_MAX, &max_chunks) ||
      !flags.get_int("cache", 0, 0, INT64_MAX, &cache_entries)) {
    return flag_error(flags);
  }

  // Fleet dispatch (run/resume): lease partitioning replaces both local
  // threading and shard specs, so those knobs conflict rather than
  // silently doing nothing.
  const bool fleet_mode = flags.has("fleet") || flags.has("fleet-listen");
  fleet::FleetConfig fleet_config;
  if (fleet_mode) {
    if (flags.has("fleet-listen")) {
      // Elastic membership: workers fleet.join/fleet.leave here, so the
      // initial --fleet list may be empty (the run waits for joiners).
      const auto listen_ep = net::Endpoint::parse(flags.get("fleet-listen"));
      if (!listen_ep) {
        std::fprintf(stderr,
                     "flag --fleet-listen: expected unix:PATH or "
                     "tcp:HOST:PORT\n");
        return usage();
      }
      fleet_config.listen = *listen_ep;
    }
    if (flags.has("fleet") &&
        !parse_fleet_endpoints(flags.get("fleet"), &fleet_config.workers)) {
      std::fprintf(stderr,
                   "flag --fleet: expected a comma-separated list of "
                   "unix:PATH|tcp:HOST:PORT endpoints\n");
      return usage();
    }
    if (threads != 0 || cache_entries != 0 || max_chunks != 0) {
      std::fprintf(stderr,
                   "campaign %s: --threads/--cache/--max-chunks apply to "
                   "local runs, not --fleet (workers own their pools)\n",
                   sub.c_str());
      return usage();
    }
    std::int64_t v = 0;
    if (!flags.get_int("fleet-chunk", 512, 1, INT64_MAX, &v)) {
      return flag_error(flags);
    }
    fleet_config.chunk = static_cast<std::uint64_t>(v);
    if (!flags.get_int("lease-grain", 4, 1, 1 << 20, &v)) {
      return flag_error(flags);
    }
    fleet_config.lease_grain = static_cast<std::uint64_t>(v);
    if (!flags.get_int("min-steal", 256, 2, INT64_MAX, &v)) {
      return flag_error(flags);
    }
    fleet_config.min_steal_items = static_cast<std::uint64_t>(v);
    if (!flags.get_int("heartbeat-ms", 10000, 100, INT32_MAX, &v)) {
      return flag_error(flags);
    }
    fleet_config.heartbeat_timeout_ms = static_cast<int>(v);
    if (!flags.get_int("fleet-reconnect-ms", 10000, 100, INT32_MAX, &v)) {
      return flag_error(flags);
    }
    fleet_config.reconnect.budget_ms = static_cast<int>(v);
    // The attempt cap scales with the budget; the per-sleep clamp keeps
    // probing frequent enough to catch a worker restart promptly.
    fleet_config.reconnect.max_attempts = INT32_MAX;
  }

  try {
    if (sub == "run") {
      campaign::CampaignConfig config;
      std::int64_t v = 0;
      if (!flags.get_int("nmin", 1, 1, 1 << 20, &v)) return flag_error(flags);
      config.n_min = static_cast<int>(v);
      if (!flags.get_int("nmax", config.n_min, 1, 1 << 20, &v)) {
        return flag_error(flags);
      }
      config.n_max = static_cast<int>(v);
      if (!flags.get_int("kmin", 1, 1, 64, &v)) return flag_error(flags);
      config.k_min = static_cast<int>(v);
      if (!flags.get_int("kmax", config.k_min, 1, 64, &v)) {
        return flag_error(flags);
      }
      config.k_max = static_cast<int>(v);
      const std::string mode = flags.get("mode", "exhaustive");
      if (mode == "exhaustive") {
        config.mode = verify::CheckMode::kExhaustive;
      } else if (mode == "sampled") {
        config.mode = verify::CheckMode::kSampled;
      } else {
        std::fprintf(stderr, "flag --mode: expected exhaustive|sampled\n");
        return usage();
      }
      if (!flags.get_int("samples", 1000, 0, INT64_MAX, &v)) {
        return flag_error(flags);
      }
      config.samples = static_cast<std::uint64_t>(v);
      if (!flags.get_int("seed", 1, 0, INT64_MAX, &v)) {
        return flag_error(flags);
      }
      config.seed = static_cast<std::uint64_t>(v);
      if (!parse_prune(flags.get("prune", "auto"), &config.prune)) {
        std::fprintf(stderr, "flag --prune: expected auto|off\n");
        return usage();
      }
      if (flags.has("shard") &&
          !util::FlagParser::parse_shard(flags.get("shard"),
                                         &config.shard_index,
                                         &config.shard_count)) {
        std::fprintf(stderr,
                     "flag --shard: expected i/S with 0 <= i < S\n");
        return usage();
      }
      if (!flags.get_int("chunk", 256, 1, INT64_MAX, &v)) {
        return flag_error(flags);
      }
      config.chunk = static_cast<std::uint64_t>(v);
      if (!flags.get_int("checkpoint-every", 4, 0, INT64_MAX, &v)) {
        return flag_error(flags);
      }
      config.checkpoint_every = static_cast<std::uint64_t>(v);
      if (fleet_mode) {
        if (config.shard_count != 1) {
          std::fprintf(stderr,
                       "campaign run: --shard and --fleet conflict (leases "
                       "already partition each instance)\n");
          return usage();
        }
        if (config.mode != verify::CheckMode::kExhaustive) {
          std::fprintf(stderr,
                       "campaign run: --fleet requires --mode=exhaustive\n");
          return usage();
        }
        return drive_campaign_fleet(campaign::make_campaign(config), out_dir,
                                    std::move(fleet_config));
      }
      return drive_campaign(campaign::make_campaign(config), out_dir,
                            threads, max_chunks, cache_entries);
    }
    if (sub == "resume") {
      // A run killed between open and rename leaks checkpoint temp
      // files; clear them before touching the checkpoint itself.
      for (const std::string& path : util::remove_stale_tmp_files(out_dir)) {
        std::printf("campaign resume: removed stale temp file %s\n",
                    path.c_str());
      }
      if (fleet_mode) {
        return drive_campaign_fleet(
            campaign::load_campaign_file(checkpoint_path(out_dir)), out_dir,
            std::move(fleet_config));
      }
      return drive_campaign(
          campaign::load_campaign_file(checkpoint_path(out_dir)), out_dir,
          threads, max_chunks, cache_entries);
    }
    if (sub == "merge") {
      if (flags.positionals().empty()) {
        std::fprintf(stderr,
                     "campaign merge: list the shard checkpoint files\n");
        return usage();
      }
      std::error_code ec;
      std::filesystem::create_directories(out_dir, ec);
      if (ec) {
        std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                     ec.message().c_str());
        return 1;
      }
      std::ofstream telemetry_out(out_dir + "/telemetry.jsonl",
                                  std::ios::app);
      campaign::TelemetryWriter telemetry(&telemetry_out);
      std::vector<campaign::CampaignState> shards;
      std::size_t skipped = 0;
      for (const std::string& path : flags.positionals()) {
        try {
          shards.push_back(campaign::load_campaign_file(path));
        } catch (const util::CheckpointError& e) {
          // The loader already quarantined the unusable file; record
          // the skip and keep reading the rest instead of throwing the
          // whole merge away.
          io::JsonObject fields;
          fields["path"] = path;
          fields["kind"] = util::to_string(e.kind());
          fields["error"] = std::string(e.what());
          telemetry.emit("merge_shard_skipped", std::move(fields));
          std::fprintf(stderr, "campaign merge: skipping shard %s (%s): %s\n",
                       path.c_str(), util::to_string(e.kind()), e.what());
          ++skipped;
        }
      }
      if (skipped != 0) {
        std::printf(
            "campaign: MERGE INCOMPLETE — skipped %zu of %zu shard "
            "file(s); re-run the skipped shards and merge again\n",
            skipped, flags.positionals().size());
        return 1;
      }
      const campaign::CampaignState merged = campaign::merge_shards(shards);
      campaign::write_campaign_file(checkpoint_path(out_dir), merged);
      std::fputs(campaign::status_summary(merged).c_str(), stdout);
      bool all_hold = true;
      for (const auto& inst : merged.instances) {
        if (!inst.result.holds) all_hold = false;
      }
      std::printf("campaign: MERGED %zu shards, %s\n", shards.size(),
                  all_hold ? "all instances HOLD" : "some instances FAIL");
      return all_hold ? 0 : 1;
    }
    if (sub == "status") {
      const auto state = campaign::load_campaign_file(checkpoint_path(out_dir));
      std::fputs(campaign::status_summary(state).c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign %s: %s\n", sub.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown campaign subcommand: %s\n", sub.c_str());
  return usage();
}

// Builds, inspects, and merges route-atlas artifacts.
int cmd_atlas(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "atlas: give a subcommand (build|info|merge)\n");
    return usage();
  }
  const std::string sub = argv[2];

  if (sub == "info") {
    util::FlagParser flags;
    if (!flags.parse(argc, argv, 3)) return flag_error(flags);
    if (flags.positionals().size() != 1) {
      std::fprintf(stderr, "atlas info: give exactly one artifact file\n");
      return usage();
    }
    const std::string& path = flags.positionals()[0];
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "atlas info: cannot open %s\n", path.c_str());
      return 1;
    }
    try {
      reconfig::RouteAtlas atlas(std::size_t{1} << 22);
      const reconfig::RouteAtlasFileInfo info = atlas.load(in);
      std::printf("atlas: n=%d k=%d fingerprint=%llu entries=%llu\n",
                  info.n, info.k,
                  static_cast<unsigned long long>(info.graph_fp),
                  static_cast<unsigned long long>(info.entries));
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "atlas info: %s: %s\n", path.c_str(), e.what());
      return 1;
    }
  }

  if (sub == "build") {
    util::FlagParser flags;
    flags.flag("max-faults").flag("out").flag("shard");
    if (!flags.parse(argc, argv, 3)) return flag_error(flags);
    if (flags.positionals().size() != 2) {
      std::fprintf(stderr, "atlas build: give <n> <k>\n");
      return usage();
    }
    std::int64_t n = 0, k = 0, max_faults = 0;
    if (!parse_int_arg(flags.positionals()[0], 1, 1 << 20, &n) ||
        !parse_int_arg(flags.positionals()[1], 1, 64, &k)) {
      std::fprintf(stderr,
                   "atlas build: <n> and <k> must be integers (n >= 1, "
                   "1 <= k <= 64), got '%s' '%s'\n",
                   flags.positionals()[0].c_str(),
                   flags.positionals()[1].c_str());
      return usage();
    }
    if (!flags.get_int("max-faults", k, 0, 64, &max_faults)) {
      return flag_error(flags);
    }
    std::uint32_t shard_index = 0, shard_count = 1;
    if (flags.has("shard") &&
        !util::FlagParser::parse_shard(flags.get("shard"), &shard_index,
                                       &shard_count)) {
      std::fprintf(stderr, "flag --shard: expected i/S with 0 <= i < S\n");
      return usage();
    }
    auto built = kgd::build_solution(static_cast<int>(n),
                                     static_cast<int>(k));
    if (!built) {
      std::fprintf(stderr, "atlas build: no construction for n=%lld k=%lld\n",
                   static_cast<long long>(n), static_cast<long long>(k));
      return 1;
    }
    if (built->num_nodes() > 64) {
      std::fprintf(stderr,
                   "atlas build: the n=%lld k=%lld graph has %d nodes; "
                   "graphs over 64 nodes are routed without an atlas\n",
                   static_cast<long long>(n), static_cast<long long>(k),
                   built->num_nodes());
      return 1;
    }
    try {
      reconfig::RouteAtlas atlas(std::size_t{1} << 22);
      reconfig::Router router(*built, &atlas);
      util::Timer t;
      std::uint64_t slots = 0;
      const std::uint64_t inserted = router.build_atlas(
          static_cast<int>(max_faults), shard_index, shard_count, &slots);
      const std::string out_path = flags.get("out");
      if (out_path.empty()) {
        atlas.save(std::cout, router.graph_fp(), static_cast<int>(n),
                   static_cast<int>(k));
      } else {
        std::ofstream out(out_path);
        if (!out) {
          std::fprintf(stderr, "atlas build: cannot write %s\n",
                       out_path.c_str());
          return 1;
        }
        atlas.save(out, router.graph_fp(), static_cast<int>(n),
                   static_cast<int>(k));
      }
      std::fprintf(stderr,
                   "atlas build: %llu routes from %llu orbit slots "
                   "(shard %u/%u, max_faults=%lld) in %.2fs\n",
                   static_cast<unsigned long long>(inserted),
                   static_cast<unsigned long long>(slots), shard_index,
                   shard_count, static_cast<long long>(max_faults),
                   t.seconds());
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "atlas build: %s\n", e.what());
      return 1;
    }
  }

  if (sub == "merge") {
    util::FlagParser flags;
    flags.flag("out");
    if (!flags.parse(argc, argv, 3)) return flag_error(flags);
    const std::string out_path = flags.get("out");
    if (out_path.empty()) {
      std::fprintf(stderr, "atlas merge: --out=FILE is required\n");
      return usage();
    }
    if (flags.positionals().empty()) {
      std::fprintf(stderr, "atlas merge: list the shard artifact files\n");
      return usage();
    }
    try {
      reconfig::RouteAtlas atlas(std::size_t{1} << 22);
      reconfig::RouteAtlasFileInfo first;
      bool have_first = false;
      for (const std::string& path : flags.positionals()) {
        std::ifstream in(path);
        if (!in) {
          std::fprintf(stderr, "atlas merge: cannot open %s\n",
                       path.c_str());
          return 1;
        }
        // Fingerprint pinning: every shard must describe the graph the
        // first one does, or the merged artifact would mix key spaces.
        const reconfig::RouteAtlasFileInfo info =
            atlas.load(in, have_first ? first.graph_fp : 0);
        if (!have_first) {
          first = info;
          have_first = true;
        }
      }
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "atlas merge: cannot write %s\n",
                     out_path.c_str());
        return 1;
      }
      atlas.save(out, first.graph_fp, first.n, first.k);
      std::printf("atlas merge: %llu routes for n=%d k=%d -> %s\n",
                  static_cast<unsigned long long>(atlas.size()), first.n,
                  first.k, out_path.c_str());
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "atlas merge: %s\n", e.what());
      return 1;
    }
  }

  std::fprintf(stderr, "unknown atlas subcommand '%s' (expected build|info|"
               "merge)\n", sub.c_str());
  return usage();
}

int cmd_serve(int argc, char** argv) {
  util::FlagParser flags;
  flags.flag("unix").flag("tcp").flag("threads").flag("max-queue");
  flags.flag("max-sessions").flag("chunk").flag("drain-dir").flag("metrics");
  flags.flag("checkpoint-every").flag("cache").flag("atlas");
  flags.flag("atlas-load");
  if (!flags.parse(argc, argv, 2)) return flag_error(flags);

  service::DaemonConfig config;
  if (flags.has("unix")) {
    config.endpoints.push_back(net::Endpoint::unix_path(flags.get("unix")));
  }
  if (flags.has("tcp")) {
    const auto ep = net::Endpoint::parse("tcp:" + flags.get("tcp"));
    if (!ep) {
      std::fprintf(stderr, "flag --tcp: expected HOST:PORT\n");
      return usage();
    }
    config.endpoints.push_back(*ep);
  }
  if (config.endpoints.empty()) {
    std::fprintf(stderr, "serve: give --unix=PATH and/or --tcp=HOST:PORT\n");
    return usage();
  }
  std::int64_t v = 0;
  if (!flags.get_int("threads", 0, 0, 4096, &v)) return flag_error(flags);
  config.service.threads = static_cast<unsigned>(v);
  if (!flags.get_int("max-queue", 64, 0, 1 << 20, &v)) {
    return flag_error(flags);
  }
  config.service.max_queue = static_cast<std::size_t>(v);
  if (!flags.get_int("max-sessions", 8, 1, 4096, &v)) {
    return flag_error(flags);
  }
  config.service.max_sessions = static_cast<std::size_t>(v);
  if (!flags.get_int("chunk", 512, 1, INT64_MAX, &v)) {
    return flag_error(flags);
  }
  config.service.default_chunk = static_cast<std::uint64_t>(v);
  config.service.drain_dir = flags.get("drain-dir", ".");
  if (!flags.get_int("checkpoint-every", 0, 0, INT64_MAX, &v)) {
    return flag_error(flags);
  }
  config.service.session_checkpoint_every = static_cast<std::uint64_t>(v);
  config.service.metrics_path = flags.get("metrics");
  if (!flags.get_int("cache", 0, 0, INT64_MAX, &v)) {
    return flag_error(flags);
  }
  config.service.cache_entries = static_cast<std::uint64_t>(v);
  if (!flags.get_int("atlas", 1 << 20, 0, INT64_MAX, &v)) {
    return flag_error(flags);
  }
  config.service.atlas_entries = static_cast<std::uint64_t>(v);
  if (flags.has("atlas-load")) {
    // Comma-separated artifact list; the service throws at startup on
    // an unreadable or malformed file.
    std::string paths = flags.get("atlas-load");
    std::size_t pos = 0;
    while (pos <= paths.size()) {
      const std::size_t comma = paths.find(',', pos);
      const std::string one =
          paths.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
      if (!one.empty()) config.service.atlas_paths.push_back(one);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  try {
    service::Daemon daemon(std::move(config));
    if (flags.has("unix")) {
      std::printf("kgdd: listening on unix:%s\n", flags.get("unix").c_str());
    }
    if (daemon.tcp_port() != 0) {
      std::printf("kgdd: listening on tcp port %d\n", daemon.tcp_port());
    }
    std::fflush(stdout);
    daemon.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve: %s\n", e.what());
    return 1;
  }
  std::printf("kgdd: drained\n");
  return 0;
}

// A fleet worker is a kgdd daemon with lease-duty defaults: no session
// disk checkpoints (lease recovery is the coordinator's job, from
// streamed cursors) and no verdict cache (cache hits would perturb the
// per-lease solve counters that fleet accounting reports; the service
// never attaches the cache to lease sessions anyway).
// One registration round-trip against a coordinator's --fleet-listen
// endpoint (`fleet.join` on startup, `fleet.leave` on drain): dials with
// a short bounded backoff, sends {method, params:{endpoint}}, and waits
// for the terminal result/error frame. Returns false (with a logged
// reason) on any failure — registration is advisory, so the worker
// keeps serving either way.
bool register_with_coordinator(const net::Endpoint& coordinator,
                               const std::string& method,
                               const std::string& self_endpoint) {
  util::BackoffPolicy policy;
  policy.budget_ms = 10000;
  policy.max_attempts = 20;
  util::Backoff backoff(policy);
  std::optional<net::Client> client;
  std::string error;
  while (true) {
    client = net::Client::connect(coordinator, &error);
    if (client.has_value()) break;
    int delay_ms = 0;
    if (!backoff.next_delay(&delay_ms)) {
      std::fprintf(stderr, "worker: %s: cannot reach coordinator %s: %s\n",
                   method.c_str(), coordinator.to_string().c_str(),
                   error.c_str());
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  io::JsonObject params;
  params["endpoint"] = self_endpoint;
  io::JsonObject frame;
  frame["method"] = method;
  frame["params"] = io::Json(std::move(params));
  frame["schema_version"] = io::kSchemaVersion;
  if (!client->send_line(io::Json(std::move(frame)).dump(), &error)) {
    std::fprintf(stderr, "worker: %s: send failed: %s\n", method.c_str(),
                 error.c_str());
    return false;
  }
  const net::Client::ReadResult res = client->read_frame(5000);
  if (res.status != net::ReadStatus::kOk) {
    std::fprintf(stderr, "worker: %s: no reply from coordinator (%s)\n",
                 method.c_str(), net::to_string(res.status));
    return false;
  }
  try {
    const io::Json reply = io::Json::parse(res.frame);
    if (const io::Json* type = reply.find("type");
        type != nullptr && type->is_string() && type->as_string() == "error") {
      const io::Json* msg = reply.find("message");
      std::fprintf(stderr, "worker: %s rejected: %s\n", method.c_str(),
                   msg != nullptr && msg->is_string()
                       ? msg->as_string().c_str()
                       : res.frame.c_str());
      return false;
    }
  } catch (const io::JsonParseError& e) {
    std::fprintf(stderr, "worker: %s: bad reply: %s\n", method.c_str(),
                 e.what());
    return false;
  }
  return true;
}

int cmd_worker(int argc, char** argv) {
  util::FlagParser flags;
  flags.flag("listen").flag("threads").flag("chunk").flag("max-sessions");
  flags.flag("join");
  if (!flags.parse(argc, argv, 2)) return flag_error(flags);

  service::DaemonConfig config;
  const auto ep = net::Endpoint::parse(flags.get("listen"));
  if (!ep) {
    std::fprintf(stderr,
                 "worker: --listen=unix:PATH|tcp:HOST:PORT is required\n");
    return usage();
  }
  config.endpoints.push_back(*ep);
  std::int64_t v = 0;
  if (!flags.get_int("threads", 0, 0, 4096, &v)) return flag_error(flags);
  config.service.threads = static_cast<unsigned>(v);
  if (!flags.get_int("chunk", 512, 1, INT64_MAX, &v)) {
    return flag_error(flags);
  }
  config.service.default_chunk = static_cast<std::uint64_t>(v);
  if (!flags.get_int("max-sessions", 8, 1, 4096, &v)) {
    return flag_error(flags);
  }
  config.service.max_sessions = static_cast<std::size_t>(v);
  config.service.session_checkpoint_every = 0;
  config.service.cache_entries = 0;
  config.service.atlas_entries = 0;

  std::optional<net::Endpoint> coordinator;
  if (flags.has("join")) {
    coordinator = net::Endpoint::parse(flags.get("join"));
    if (!coordinator) {
      std::fprintf(stderr,
                   "worker: --join=unix:PATH|tcp:HOST:PORT names the "
                   "coordinator's --fleet-listen endpoint\n");
      return usage();
    }
  }

  try {
    service::Daemon daemon(std::move(config));
    if (ep->kind == net::Endpoint::Kind::kUnix) {
      std::printf("kgdd worker: listening on unix:%s\n", ep->path.c_str());
    }
    if (daemon.tcp_port() != 0) {
      std::printf("kgdd worker: listening on tcp port %d\n",
                  daemon.tcp_port());
    }
    std::fflush(stdout);
    if (coordinator.has_value()) {
      // Elastic membership: announce our serving endpoint (resolving an
      // ephemeral TCP port to the bound one) so the coordinator dials
      // back and starts granting leases.
      net::Endpoint self = *ep;
      if (self.kind == net::Endpoint::Kind::kTcp && self.port == 0) {
        self.port = daemon.tcp_port();
      }
      if (register_with_coordinator(*coordinator, "fleet.join",
                                    self.to_string())) {
        std::printf("kgdd worker: joined fleet at %s\n",
                    coordinator->to_string().c_str());
        std::fflush(stdout);
      }
      daemon.run();
      // Best-effort detach: lease sessions have already drained their
      // cursors back; fleet.leave just spares the coordinator a
      // reconnect storm against a gone worker.
      register_with_coordinator(*coordinator, "fleet.leave",
                                self.to_string());
    } else {
      daemon.run();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker: %s\n", e.what());
    return 1;
  }
  std::printf("kgdd worker: drained\n");
  return 0;
}

int cmd_request(int argc, char** argv) {
  util::FlagParser flags;
  flags.flag("connect").flag("params").flag("tag").flag("timeout");
  if (!flags.parse(argc, argv, 2)) return flag_error(flags);
  if (flags.positionals().empty()) {
    std::fprintf(stderr, "request: give the method name\n");
    return usage();
  }
  const auto ep = net::Endpoint::parse(flags.get("connect"));
  if (!ep) {
    std::fprintf(stderr,
                 "request: --connect=unix:PATH|tcp:HOST:PORT is required\n");
    return usage();
  }
  std::int64_t timeout = 0;
  if (!flags.get_int("timeout", 600000, -1, INT32_MAX, &timeout)) {
    return flag_error(flags);
  }

  io::JsonObject request;
  request["method"] = flags.positionals()[0];
  if (flags.has("params")) {
    try {
      request["params"] = io::Json::parse(flags.get("params"));
    } catch (const io::JsonParseError& e) {
      std::fprintf(stderr, "request: bad --params JSON: %s\n", e.what());
      return 2;
    }
  }
  if (flags.has("tag")) request["tag"] = flags.get("tag");

  std::string error;
  std::optional<net::Client> client;
  // A restarting daemon refuses TCP connects (ECONNREFUSED) or has not
  // recreated its unix socket yet (ENOENT); both are transient, so
  // retry with bounded backoff — capped on attempts AND total
  // wall-clock (the old attempt-only loop could stall for the full
  // geometric sum) — and surface the final errno on give-up.
  util::Backoff backoff;
  while (true) {
    int connect_errno = 0;
    client = net::Client::connect(*ep, &error, &connect_errno);
    if (client) break;
    const bool retryable = connect_errno == ECONNREFUSED ||
                           connect_errno == ENOENT ||
                           connect_errno == ECONNRESET;
    int delay_ms = 0;
    if (!retryable || !backoff.next_delay(&delay_ms)) {
      std::fprintf(stderr,
                   "request: cannot connect to %s after %d attempts over "
                   "%d ms: %s (errno %d)\n",
                   ep->to_string().c_str(), backoff.attempts() + 1,
                   backoff.elapsed_ms(), error.c_str(), connect_errno);
      return 1;
    }
    std::fprintf(stderr, "request: %s; retrying in %d ms\n", error.c_str(),
                 delay_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (!client->send_json(io::Json(std::move(request)), &error)) {
    std::fprintf(stderr, "request: %s\n", error.c_str());
    return 1;
  }
  while (true) {
    net::ReadStatus status = net::ReadStatus::kError;
    const auto frame =
        client->read_json(static_cast<int>(timeout), &error, &status);
    if (!frame) {
      if (status == net::ReadStatus::kClosed) {
        std::fprintf(stderr,
                     "request: server closed connection before a terminal "
                     "frame\n");
      } else if (status == net::ReadStatus::kTimeout) {
        std::fprintf(stderr,
                     "request: timed out after %lld ms waiting for a reply\n",
                     static_cast<long long>(timeout));
      } else {
        std::fprintf(stderr, "request: %s\n", error.c_str());
      }
      return 1;
    }
    std::printf("%s\n", frame->dump().c_str());
    std::fflush(stdout);
    if (service::is_terminal_frame(*frame)) {
      const io::Json* type = frame->find("type");
      return type != nullptr && type->is_string() &&
                     type->as_string() == "result"
                 ? 0
                 : 1;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  // Closed command set: anything else fails with a message naming the
  // offender instead of the bare usage fallthrough.
  static const char* const kCommands[] = {
      "build", "dot", "verify", "route", "atlas", "save", "json",
      "certify", "check-cert", "campaign", "serve", "request", "worker"};
  bool known = false;
  for (const char* c : kCommands) known = known || cmd == c;
  if (!known) {
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return usage();
  }

  if (cmd == "campaign") return cmd_campaign(argc, argv);
  if (cmd == "serve") return cmd_serve(argc, argv);
  if (cmd == "request") return cmd_request(argc, argv);
  if (cmd == "worker") return cmd_worker(argc, argv);
  if (cmd == "atlas") return cmd_atlas(argc, argv);

  if (argc < 3) {
    std::fprintf(stderr, "%s: missing arguments\n", cmd.c_str());
    return usage();
  }

  if (cmd == "check-cert") {
    std::ifstream in(argv[2]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    const auto stats = verify::check_certificate(in);
    std::printf("certificate: %s (%llu entries)\n",
                stats.ok() ? "VALID" : "INVALID",
                static_cast<unsigned long long>(stats.entries));
    if (!stats.ok()) std::printf("  %s\n", stats.error.c_str());
    return stats.ok() ? 0 : 1;
  }

  util::FlagParser flags;
  if (cmd == "verify") {
    flags.flag("prune").flag("threads").flag("json", /*requires_value=*/false);
    flags.flag("batch").flag("lanes").flag("cache");
  }
  if (cmd == "route") {
    flags.flag("atlas").flag("no-atlas", /*requires_value=*/false);
  }
  if (!flags.parse(argc, argv, 2)) return flag_error(flags);
  if (flags.positionals().size() < 2) {
    std::fprintf(stderr, "%s: give <n> <k>\n", cmd.c_str());
    return usage();
  }
  std::int64_t n64 = 0, k64 = 0;
  if (!parse_int_arg(flags.positionals()[0], 1, 1 << 20, &n64) ||
      !parse_int_arg(flags.positionals()[1], 1, 64, &k64)) {
    std::fprintf(stderr,
                 "%s: <n> and <k> must be integers (n >= 1, 1 <= k <= 64), "
                 "got '%s' '%s'\n",
                 cmd.c_str(), flags.positionals()[0].c_str(),
                 flags.positionals()[1].c_str());
    return usage();
  }
  const int n = static_cast<int>(n64);
  const int k = static_cast<int>(k64);

  auto built = kgd::build_solution(n, k);
  if (!built) {
    std::fprintf(stderr,
                 "no construction for n=%d k=%d (paper coverage: n<=3 any "
                 "k; k<=3 any n; k>=4 with n>=2k+5)\n",
                 n, k);
    return 1;
  }
  const kgd::SolutionGraph& sg = *built;

  if (cmd == "build") {
    std::printf("%s via %s\n", sg.name().c_str(),
                kgd::construction_method(n, k).c_str());
    std::printf("  nodes: %d (%d inputs, %d outputs, %d processors)\n",
                sg.num_nodes(), sg.num_inputs(), sg.num_outputs(),
                sg.num_processors());
    std::printf("  edges: %zu\n", sg.graph().num_edges());
    const auto rep = verify::certify_optimality(sg);
    std::printf("  %s\n", rep.summary().c_str());
    return 0;
  }
  if (cmd == "dot") {
    std::fputs(sg.to_dot().c_str(), stdout);
    return 0;
  }
  if (cmd == "verify") return cmd_verify(sg, k, flags);
  if (cmd == "save") {
    io::save_solution(std::cout, sg);
    return 0;
  }
  if (cmd == "json") {
    std::fputs(io::solution_to_json(sg).dump(2).c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  if (cmd == "certify") {
    try {
      verify::write_certificate(std::cout, sg, k);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot certify: %s\n", e.what());
      return 1;
    }
    return 0;
  }
  if (cmd == "route") {
    std::vector<int> faulty;
    for (std::size_t i = 2; i < flags.positionals().size(); ++i) {
      std::int64_t v = 0;
      if (!parse_int_arg(flags.positionals()[i], 0, sg.num_nodes() - 1,
                         &v)) {
        std::fprintf(stderr,
                     "route: faulty node '%s' must be an integer in "
                     "[0, %d) (the n=%d k=%d graph has %d nodes)\n",
                     flags.positionals()[i].c_str(), sg.num_nodes(), n, k,
                     sg.num_nodes());
        return usage();
      }
      faulty.push_back(static_cast<int>(v));
    }
    if (flags.has("atlas") && flags.has("no-atlas")) {
      std::fprintf(stderr, "route: --atlas and --no-atlas conflict\n");
      return usage();
    }
    std::unique_ptr<reconfig::RouteAtlas> atlas;
    if (!flags.has("no-atlas")) {
      atlas = std::make_unique<reconfig::RouteAtlas>(std::size_t{1} << 22);
    }
    reconfig::Router router(sg, atlas.get());
    if (flags.has("atlas")) {
      const std::string path = flags.get("atlas");
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "route: cannot open atlas artifact %s\n",
                     path.c_str());
        return 1;
      }
      try {
        atlas->load(in, router.graph_fp());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "route: %s: %s\n", path.c_str(), e.what());
        return 1;
      }
    }
    const kgd::FaultSet fs(sg.num_nodes(), faulty);
    auto scratch = std::make_unique<fault::FaultCanonicalizer::Scratch>();
    const reconfig::Router::Result res = router.route(fs, *scratch);
    if (!res.feasible) {
      std::printf("no pipeline with faults %s\n", fs.to_string().c_str());
      return 1;
    }
    std::printf("pipeline (%d processors): %s\n",
                res.pipeline.num_processors(),
                res.pipeline.to_string(sg).c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return usage();
}
